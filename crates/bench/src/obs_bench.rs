//! `reproduce obs` — the tracked observability harness.
//!
//! Runs the serve closed loop with an [`Obs`] bus installed, audits the
//! resulting trace with [`TraceAudit`] (the bench doubles as an
//! end-to-end invariant check), and exports a **fixed-schema**
//! `BENCH_obs.json`: every span kind and every point kind appears, even
//! at zero, so the key set never depends on which code paths a
//! particular run happened to exercise. `scripts/check.sh` extracts the
//! key paths and diffs them against the checked-in golden schema
//! (`scripts/BENCH_obs.schema`) — schema drift fails the gate.

use ctb_core::{Framework, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{GemmBatch, GemmShape};
use ctb_obs::{MetricsSnapshot, Obs, PointKind, SpanKind, TraceAudit, TraceCounts};
use ctb_serve::{GemmRequest, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The tracked observability numbers for one instrumented run.
#[derive(Debug, Clone)]
pub struct ObsBenchReport {
    pub producers: usize,
    pub requests: usize,
    /// Total events in the log (spans open + close, points).
    pub events: usize,
    /// Flight-recorder dumps (0 on a healthy run).
    pub flight_dumps: usize,
    pub wall_ms: f64,
    /// Audited trace counts (exact reconciliation already checked).
    pub counts: TraceCounts,
    /// Snapshot of the bus's metrics registry.
    pub snapshot: MetricsSnapshot,
}

/// Same repeated-signature pool as the serve harness: cache hits and
/// real coalescing, so every span kind but the degraded one fires.
fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(64, 64, 64),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
    ]
}

/// Closed loop with the bus installed; the trace is audited and
/// reconciled against `ServeStats` with `==` before returning.
pub fn run_obs_bench(arch: &ArchSpec, producers: usize, per_producer: usize) -> ObsBenchReport {
    let obs = Arc::new(Obs::wall());
    let session = Session::new(Framework::new(arch.clone()));
    let cfg = ServeConfig {
        max_batch: 16,
        batch_window: Duration::from_micros(300),
        queue_capacity: 64,
        workers: 2,
        ..ServeConfig::default()
    };
    let server =
        Arc::new(Server::with_instrumentation(session, cfg, None, Some(Arc::clone(&obs))));
    let pool = shape_pool();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|t| {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            std::thread::spawn(move || {
                for i in 0..per_producer {
                    let shape = pool[(t + i) % pool.len()];
                    let batch = GemmBatch::random(&[shape], 1.0, 0.5, (t * 10_000 + i) as u64);
                    server
                        .submit(GemmRequest {
                            a: batch.a[0].clone(),
                            b: batch.b[0].clone(),
                            c: batch.c[0].clone(),
                            alpha: batch.alpha,
                            beta: batch.beta,
                            deadline: None,
                        })
                        .expect("closed-loop submit admitted")
                        .wait()
                        .expect("closed-loop request completed");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread panicked");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let server = Arc::into_inner(server).expect("all producers joined");
    let stats = server.shutdown();
    let requests = producers * per_producer;
    assert_eq!(stats.completed, requests, "closed loop completed everything");

    let counts = TraceAudit::new(obs.events()).check().expect("bench trace audits clean");
    assert_eq!(counts.responds, stats.completed, "trace reconciles with ServeStats");
    assert_eq!(counts.batches, stats.batches);

    ObsBenchReport {
        producers,
        requests,
        events: obs.events().len(),
        flight_dumps: obs.flight_dumps().len(),
        wall_ms,
        counts,
        snapshot: obs.metrics().snapshot(),
    }
}

/// Fixed-schema JSON: `spans` iterates [`SpanKind::ALL`] and `points`
/// iterates [`PointKind::ALL_NAMES`], reading every key through
/// [`MetricsSnapshot::counter`] so absent metrics export as 0 instead
/// of disappearing. The key set is therefore a constant of the code,
/// not of the run — which is exactly what the schema gate diffs.
pub fn render_json(arch: &ArchSpec, r: &ObsBenchReport) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"obs\",\n  \"arch\": \"{}\",\n  \"producers\": {},\n  \
         \"requests\": {},\n  \"events\": {},\n  \"flight_dumps\": {},\n  \"wall_ms\": {:.3},\n",
        arch.name, r.producers, r.requests, r.events, r.flight_dumps, r.wall_ms
    );
    out.push_str("  \"spans\": {\n");
    for (i, kind) in SpanKind::ALL.iter().enumerate() {
        let name = kind.name();
        let count = r.snapshot.counter(&format!("span.{name}.count"));
        let (p50, p95) = r
            .snapshot
            .histograms
            .get(&format!("span.{name}.us"))
            .map(|h| (h.percentile(0.50), h.percentile(0.95)))
            .unwrap_or((0.0, 0.0));
        out.push_str(&format!(
            "    \"{name}\": {{ \"count\": {count}, \"p50_us\": {p50:.1}, \"p95_us\": {p95:.1} }}{}\n",
            if i + 1 < SpanKind::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n  \"points\": {\n");
    for (i, name) in PointKind::ALL_NAMES.iter().enumerate() {
        let count = r.snapshot.counter(&format!("point.{name}"));
        out.push_str(&format!(
            "    \"{name}\": {count}{}\n",
            if i + 1 < PointKind::ALL_NAMES.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Key paths of a JSON document in our own renderers' shape (one key
/// per line, objects opened by `"key": {`). Returned in document order,
/// dotted: `spans.plan.count`. This is the schema the drift gate diffs
/// — values are deliberately ignored.
pub fn key_paths(json: &str) -> Vec<String> {
    let bytes = json.as_bytes();
    let mut keyed_path: Vec<String> = Vec::new();
    // One entry per currently-open brace: was it introduced by a key?
    let mut opens: Vec<bool> = Vec::new();
    let mut paths = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                let key = &json[start..j];
                let mut k = j + 1;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b':' {
                    // A key, not a string value: record its path, and
                    // descend if its value is an object.
                    let mut v = k + 1;
                    while v < bytes.len() && bytes[v].is_ascii_whitespace() {
                        v += 1;
                    }
                    paths.push(if keyed_path.is_empty() {
                        key.to_string()
                    } else {
                        format!("{}.{}", keyed_path.join("."), key)
                    });
                    if v < bytes.len() && bytes[v] == b'{' {
                        keyed_path.push(key.to_string());
                        opens.push(true);
                        i = v + 1;
                        continue;
                    }
                    i = v;
                } else {
                    i = j + 1;
                }
            }
            b'{' => {
                opens.push(false);
                i += 1;
            }
            b'}' => {
                if opens.pop() == Some(true) {
                    keyed_path.pop();
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    paths.sort();
    paths.dedup();
    paths
}

/// Path of the tracked report at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("obs")
}

/// Path of the checked-in golden schema the gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_obs.schema")
}

/// Run the standard tracked configuration, write `BENCH_obs.json`, and
/// return the report plus the path written.
pub fn run_and_write(arch: &ArchSpec) -> (ObsBenchReport, PathBuf) {
    let report = run_obs_bench(arch, 4, 40);
    let path = crate::write_bench_json("obs", &render_json(arch, &report));
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_closed_loop_audits_and_reports() {
        let r = run_obs_bench(&ArchSpec::volta_v100(), 2, 5);
        assert_eq!(r.requests, 10);
        assert_eq!(r.counts.responds, 10);
        assert_eq!(r.flight_dumps, 0, "healthy run must not dump");
        assert!(r.events > 0);
        assert_eq!(r.snapshot.counter("point.respond"), 10);
    }

    #[test]
    fn json_schema_is_fixed_regardless_of_exercised_paths() {
        // An empty report (no events at all) must export the same key
        // set as a real run — that is the whole point of the gate.
        let empty = ObsBenchReport {
            producers: 0,
            requests: 0,
            events: 0,
            flight_dumps: 0,
            wall_ms: 0.0,
            counts: TraceCounts::default(),
            snapshot: MetricsSnapshot::default(),
        };
        let real = run_obs_bench(&ArchSpec::volta_v100(), 1, 3);
        let arch = ArchSpec::volta_v100();
        assert_eq!(
            key_paths(&render_json(&arch, &empty)),
            key_paths(&render_json(&arch, &real)),
            "schema must not depend on which seams fired"
        );
    }

    #[test]
    fn key_paths_walks_nested_and_inline_objects() {
        let json = "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": { \"d\": 2, \"e\": 3 },\n    \"f\": 4\n  }\n}\n";
        let paths = key_paths(json);
        for expect in ["a", "b", "b.c", "b.c.d", "b.c.e", "b.f"] {
            assert!(paths.contains(&expect.to_string()), "missing {expect} in {paths:?}");
        }
    }

    #[test]
    fn golden_schema_matches_the_renderer() {
        let golden = std::fs::read_to_string(golden_schema_path())
            .expect("scripts/BENCH_obs.schema is checked in");
        let golden: Vec<String> = golden.lines().map(str::to_string).collect();
        let empty = ObsBenchReport {
            producers: 0,
            requests: 0,
            events: 0,
            flight_dumps: 0,
            wall_ms: 0.0,
            counts: TraceCounts::default(),
            snapshot: MetricsSnapshot::default(),
        };
        assert_eq!(
            key_paths(&render_json(&ArchSpec::volta_v100(), &empty)),
            golden,
            "BENCH_obs.json schema drifted; update scripts/BENCH_obs.schema deliberately"
        );
    }
}

//! Pretty-printers for Table 1, Table 2 and the §4.2.3 worked example.

use ctb_gpu_specs::Thresholds;
use ctb_matrix::GemmShape;
use ctb_tiling::strategy::{BATCHED_STRATEGIES_128, BATCHED_STRATEGIES_256, SINGLE_GEMM_STRATEGIES};
use ctb_tiling::{model, select_tiling};

/// Render Table 1 (single-GEMM strategies) as the paper lays it out.
pub fn table1() -> String {
    let mut out = String::from("Tiling Strategy |  BY |  BX | BK | Threads | Sub-Tile\n");
    for s in SINGLE_GEMM_STRATEGIES {
        out.push_str(&format!(
            "{:>15} | {:>3} | {:>3} | {:>2} | {:>7} | {}x{}\n",
            s.kind.to_string(),
            s.by,
            s.bx,
            s.bk,
            s.threads,
            s.sub_y,
            s.sub_x
        ));
    }
    out
}

/// Render Table 2 (batched strategies, both thread versions).
pub fn table2() -> String {
    let mut out =
        String::from("  Name |  BY |  BX | BK | Sub-Tile(128T) | Sub-Tile(256T)\n");
    for (s128, s256) in BATCHED_STRATEGIES_128.iter().zip(&BATCHED_STRATEGIES_256) {
        out.push_str(&format!(
            "{:>6} | {:>3} | {:>3} | {:>2} | {:>14} | {}x{}\n",
            s128.kind.to_string(),
            s128.by,
            s128.bx,
            s128.bk,
            format!("{}x{}", s128.sub_y, s128.sub_x),
            s256.sub_y,
            s256.sub_x
        ));
    }
    out
}

/// Replay the §4.2.3 worked example, returning its narrative.
pub fn worked_example() -> String {
    let shapes = [
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 64, 64),
        GemmShape::new(256, 256, 64),
    ];
    let th = Thresholds::paper_v100();
    let sol = select_tiling(&shapes, &th);
    let kinds: Vec<String> = sol.per_gemm.iter().map(|s| s.kind.to_string()).collect();
    let small = ctb_tiling::strategy::batched(
        ctb_tiling::StrategyKind::Small,
        ctb_tiling::ThreadCount::T256,
    );
    let first_tlp = model::tlp(&shapes, &[small, small, small]);
    format!(
        "GEMMs: 16x32x128, 64x64x64, 256x256x64 (TLP threshold {})\n\
         round 1 (small, small, small): TLP = {first_tlp}\n\
         final solution ({}): TLP = {}\n",
        th.tlp_threshold,
        kinds.join(", "),
        sol.tlp
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_all_rows() {
        let t1 = table1();
        assert_eq!(t1.lines().count(), 7);
        assert!(t1.contains("huge") && t1.contains("128 | 128 |  8 |     256 | 8x8"));
        let t2 = table2();
        assert_eq!(t2.lines().count(), 7);
        assert!(t2.contains("16x8"), "huge 128T sub-tile");
    }

    #[test]
    fn worked_example_reports_paper_numbers() {
        let text = worked_example();
        assert!(text.contains("70144"), "{text}");
        assert!(text.contains("17920"), "{text}");
        assert!(text.contains("small, medium, medium"), "{text}");
    }
}

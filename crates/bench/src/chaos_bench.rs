//! `reproduce chaos` — the tracked resilience harness.
//!
//! Sweeps the injected fault rate (plan failures + executor panics)
//! over a closed-loop serving workload and reports, per rate point, the
//! service level the resilience layer sustains: p95 latency, the
//! fraction of requests served through the degraded per-kernel
//! baseline, retry/panic counts, and throughput. Every result — also
//! the degraded ones — is still checked bitwise against the exact
//! oracle. Results land in `BENCH_chaos.json` at the repository root;
//! the zero-rate point doubles as the "injection armed but silent"
//! overhead reference.

use ctb_core::{Framework, Session};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{bitwise_mismatch, GemmBatch, GemmShape};
use ctb_serve::{
    BreakerPolicy, FaultConfig, FaultInjector, GemmRequest, RetryPolicy, ServeConfig, Server,
};
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Injected panics unwind through the server's isolation boundary by
/// design; keep their default-hook noise out of the harness output
/// while leaving real panics loud.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let injected = msg.is_some_and(|s| s.contains("ctb-serve injected fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// One fault-rate point of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Injection rate applied to both plan failures and executor
    /// panics, per mille of draws at each site.
    pub fault_per_mille: u32,
    /// Requests completed (the loop never drops any).
    pub requests: usize,
    /// Fraction served through the degraded baseline.
    pub degraded_fraction: f64,
    /// Individual re-admissions after caught panics.
    pub retries: usize,
    /// Panics caught at the isolation boundary.
    pub worker_panics: usize,
    /// Circuit-breaker trips over the run.
    pub breaker_trips: usize,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile end-to-end latency, microseconds.
    pub p95_us: f64,
}

fn shape_pool() -> Vec<GemmShape> {
    vec![
        GemmShape::new(16, 32, 64),
        GemmShape::new(64, 64, 64),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
        GemmShape::new(32, 128, 32),
    ]
}

/// Closed loop at one injected fault rate: `producers` threads,
/// `per_producer` requests each, every result verified bitwise.
pub fn run_chaos_point(
    arch: &ArchSpec,
    fault_per_mille: u32,
    producers: usize,
    per_producer: usize,
) -> ChaosPoint {
    quiet_injected_panics();
    let injector = Arc::new(FaultInjector::new(
        FaultConfig::new(0xC4A0_5EED ^ u64::from(fault_per_mille))
            .plan_fail(fault_per_mille)
            .exec_panic(fault_per_mille),
    ));
    let session = Arc::new(Session::new(Framework::new(arch.clone())));
    let server = Arc::new(Server::with_fault_injection(
        session,
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(300),
            queue_capacity: 64,
            workers: 2,
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base: Duration::from_micros(20),
                backoff_cap: Duration::from_micros(500),
                ..RetryPolicy::default()
            },
            breaker: BreakerPolicy::default(),
        },
        Arc::clone(&injector),
    ));
    let pool = shape_pool();

    let t0 = Instant::now();
    let degraded_total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|t| {
                let server = Arc::clone(&server);
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut degraded = 0usize;
                    for i in 0..per_producer {
                        let shape = pool[(t + i) % pool.len()];
                        let seed = (t * 10_000 + i) as u64;
                        let batch = GemmBatch::random(&[shape], 1.0, 0.5, seed);
                        let expected = batch.reference_result_exact();
                        let got = server
                            .submit(GemmRequest {
                                a: batch.a[0].clone(),
                                b: batch.b[0].clone(),
                                c: batch.c[0].clone(),
                                alpha: batch.alpha,
                                beta: batch.beta,
                                deadline: None,
                            })
                            .expect("closed-loop submit admitted")
                            .wait_for(Duration::from_secs(60))
                            .expect("every faulted request still resolves to a result");
                        assert!(
                            bitwise_mismatch(&expected, std::slice::from_ref(&got.c)).is_none(),
                            "producer {t} request {i}: result diverged under fault injection"
                        );
                        degraded += usize::from(got.degraded);
                    }
                    degraded
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("producer survived the storm")).sum()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let server = Arc::into_inner(server).expect("all producers joined");
    let stats = server.shutdown();
    let requests = producers * per_producer;
    assert_eq!(stats.completed, requests, "zero drops at any fault rate");
    assert_eq!(stats.degraded, degraded_total, "server and clients agree on degraded count");

    ChaosPoint {
        fault_per_mille,
        requests,
        degraded_fraction: stats.degraded as f64 / requests as f64,
        retries: stats.retries,
        worker_panics: stats.worker_panics,
        breaker_trips: stats.breaker_trips,
        throughput_rps: requests as f64 / (wall_ms / 1e3),
        p50_us: stats.p50_us,
        p95_us: stats.p95_us,
    }
}

/// The tracked sweep: quiet, moderate, and heavy injection.
pub fn run_chaos_sweep(arch: &ArchSpec, producers: usize, per_producer: usize) -> Vec<ChaosPoint> {
    [0u32, 50, 200]
        .into_iter()
        .map(|rate| run_chaos_point(arch, rate, producers, per_producer))
        .collect()
}

/// Serialize the sweep as the tracked JSON schema.
pub fn render_json(arch: &ArchSpec, points: &[ChaosPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"fault_per_mille\": {}, \"requests\": {}, \"degraded_fraction\": {:.4}, \
                 \"retries\": {}, \"worker_panics\": {}, \"breaker_trips\": {}, \
                 \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}}}",
                p.fault_per_mille,
                p.requests,
                p.degraded_fraction,
                p.retries,
                p.worker_panics,
                p.breaker_trips,
                p.throughput_rps,
                p.p50_us,
                p.p95_us
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"chaos\",\n  \"arch\": \"{}\",\n  \"points\": [\n{}\n  ]\n}}\n",
        arch.name,
        rows.join(",\n")
    )
}

/// Path of the tracked report: `BENCH_chaos.json` at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("chaos")
}

/// Run the standard tracked sweep and write the report.
pub fn run_and_write(arch: &ArchSpec) -> (Vec<ChaosPoint>, PathBuf) {
    let points = run_chaos_sweep(arch, 4, 50);
    let path = crate::write_bench_json("chaos", &render_json(arch, &points));
    (points, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_point_reports_sane_numbers() {
        let p = run_chaos_point(&ArchSpec::volta_v100(), 300, 2, 10);
        assert_eq!(p.requests, 20);
        assert!((0.0..=1.0).contains(&p.degraded_fraction));
        assert!(p.worker_panics > 0, "30% panic rate over 20 requests fires essentially always");
        assert!(p.throughput_rps > 0.0);
        assert!(p.p95_us >= p.p50_us);
    }

    #[test]
    fn quiet_point_never_degrades() {
        let p = run_chaos_point(&ArchSpec::volta_v100(), 0, 2, 8);
        assert_eq!(p.degraded_fraction, 0.0);
        assert_eq!(p.worker_panics, 0);
        assert_eq!(p.retries, 0);
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let points = vec![ChaosPoint {
            fault_per_mille: 50,
            requests: 200,
            degraded_fraction: 0.12,
            retries: 9,
            worker_panics: 11,
            breaker_trips: 0,
            throughput_rps: 1500.0,
            p50_us: 500.0,
            p95_us: 1200.0,
        }];
        let json = render_json(&ArchSpec::volta_v100(), &points);
        for key in [
            "\"bench\"",
            "\"arch\"",
            "\"points\"",
            "\"fault_per_mille\"",
            "\"degraded_fraction\"",
            "\"retries\"",
            "\"worker_panics\"",
            "\"breaker_trips\"",
            "\"throughput_rps\"",
            "\"p95_us\"",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
    }
}

//! §1's motivation numbers: large GEMMs run near peak, small GEMMs run
//! far below 1% … a few percent of peak.

use ctb_baselines::{default_serial, simulate_baseline};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;

/// Efficiency of one GEMM executed as a single classic kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct MotivationRow {
    pub label: &'static str,
    pub shape: GemmShape,
    pub gflops: f64,
    /// Fraction of the device's peak FP32 throughput.
    pub fraction_of_peak: f64,
}

/// The two §1 data points: 5120³ (≈93 % of peak in cuBLAS) and the
/// inception3a/5x5_reduce GEMM 16×784×192 (<1 % of peak).
pub fn motivation_rows(arch: &ArchSpec) -> Vec<MotivationRow> {
    [
        ("large 5120^3", GemmShape::new(5120, 5120, 5120)),
        ("inception3a/5x5_reduce", GemmShape::new(16, 784, 192)),
    ]
    .into_iter()
    .map(|(label, shape)| {
        let report = simulate_baseline(arch, &default_serial(arch, &[shape]));
        let gflops = report.gflops(shape.flops());
        MotivationRow { label, shape, gflops, fraction_of_peak: gflops / arch.peak_gflops() }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_gemm_is_efficient_small_gemm_is_not() {
        let rows = motivation_rows(&ArchSpec::volta_v100());
        let large = &rows[0];
        let small = &rows[1];
        // The paper: 93% of peak for 5120^3; <1% for the small GEMM. Our
        // simulator should show a dramatic gap (>= 10x) with the large
        // case above 50% of peak and the small one below 10%.
        assert!(large.fraction_of_peak > 0.5, "large at {}", large.fraction_of_peak);
        assert!(small.fraction_of_peak < 0.1, "small at {}", small.fraction_of_peak);
        assert!(large.fraction_of_peak / small.fraction_of_peak > 10.0);
    }
}

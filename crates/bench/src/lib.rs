//! Experiment drivers regenerating every table and figure of the paper
//! (see `DESIGN.md` §4 for the index).
//!
//! Each driver returns plain data; the `reproduce` binary formats it the
//! way the paper reports it and writes CSV copies under
//! `target/experiments/`.

pub mod ablations;
pub mod calib_bench;
pub mod calibrate;
pub mod chaos_bench;
pub mod cluster_bench;
pub mod fans;
pub mod figures;
pub mod googlenet_exp;
pub mod locality_bench;
pub mod motivation;
pub mod obs_bench;
pub mod perf;
pub mod replay_bench;
pub mod serve_bench;
pub mod storm_bench;
pub mod tables;

pub use calibrate::{calibrate_tlp_threshold, CalibrationPoint};
pub use figures::{fig11_portability, fig8_grid, fig9_grid, CellResult, PortabilityResult};
pub use googlenet_exp::{fig10_rows, googlenet_summary};
pub use motivation::{motivation_rows, MotivationRow};

use std::io::Write as _;
use std::path::PathBuf;

/// Directory where drivers drop CSV copies of their output.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Absolute path of the tracked `BENCH_<name>.json` report at the repo
/// root, independent of the working directory the binary runs from.
pub fn bench_json_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"))
}

/// Write a tracked benchmark report to `BENCH_<name>.json` at the repo
/// root (the single writer every harness shares); returns the path.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let path = bench_json_path(name);
    std::fs::write(&path, json)
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Write `rows` (with a header) to `target/experiments/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    path
}

/// Geometric mean of a non-empty slice of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_path_lands_at_the_repo_root() {
        let p = bench_json_path("executor");
        assert!(p.ends_with("BENCH_executor.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.4]) - 1.4).abs() < 1e-12);
    }
}

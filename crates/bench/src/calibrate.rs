//! The offline TLP-threshold calibration of §4.2.3: "On each platform,
//! we determine the threshold by starting with a huge GEMM case and
//! decreasing the TLP iteratively. We choose the inflection point with
//! large performance degradation as the TLP threshold."

use ctb_batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb_core::lowering::lower_plan;
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_sim::{simulate, LaunchSequence};
use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
use ctb_tiling::TilingSolution;

/// One point of the calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Strategy that produced this TLP level.
    pub strategy: StrategyKind,
    /// Aggregate TLP (Eq 1).
    pub tlp: u64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

/// Sweep tile strategies over a huge GEMM, recording (TLP, performance).
pub fn calibration_sweep(arch: &ArchSpec) -> Vec<CalibrationPoint> {
    // A large single GEMM sized so the biggest tiles starve the device
    // (the paper's §4.2 example: 1024² under huge tiling yields only 64
    // blocks): every strategy is available, TLP shrinks as the tile
    // grows, and performance collapses once the device runs dry.
    let shape = GemmShape::new(1024, 1024, 256);
    StrategyKind::ALL
        .iter()
        .map(|&kind| {
            let st = batched(kind, ThreadCount::T256);
            let solution = TilingSolution {
                thread_count: ThreadCount::T256,
                per_gemm: vec![st],
                tlp: 0,
            };
            let tiles = tiles_for(&[shape], &solution);
            let tlp = tiles.len() as u64 * 256;
            let blocks = assign_blocks(
                &tiles,
                BatchingHeuristic::OneTilePerBlock,
                &Thresholds::paper_v100(),
                256,
            );
            let plan = BatchPlan::from_blocks(&blocks, 256);
            let kd = lower_plan("calibration", &plan, &[shape]);
            let report = simulate(arch, &LaunchSequence::Single(kd));
            CalibrationPoint { strategy: kind, tlp, gflops: report.gflops(shape.flops()) }
        })
        .collect()
}

/// The paper's inflection-point rule: decreasing the TLP iteratively,
/// the threshold is the lowest TLP level whose performance is still
/// within `degradation` (e.g. 0.9) of the best point — one step further
/// and performance degrades sharply. Rounded down to a power of two like
/// the paper's 65536.
pub fn calibrate_tlp_threshold(arch: &ArchSpec, degradation: f64) -> u64 {
    let mut points = calibration_sweep(arch);
    // Highest TLP first.
    points.sort_by_key(|p| std::cmp::Reverse(p.tlp));
    let best = points.iter().map(|p| p.gflops).fold(0.0f64, f64::max);
    let last_good = points
        .iter()
        .filter(|p| p.gflops >= best * degradation)
        .map(|p| p.tlp)
        .min()
        .unwrap_or(points.last().expect("non-empty sweep").tlp);
    // Round down to a power of two like the paper's 65536.
    let mut t = 1u64;
    while t * 2 <= last_good {
        t *= 2;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_strategies_with_decreasing_tlp() {
        let pts = calibration_sweep(&ArchSpec::volta_v100());
        assert_eq!(pts.len(), 6);
        // small -> huge: TLP must be non-increasing.
        for w in pts.windows(2) {
            assert!(w[0].tlp >= w[1].tlp, "{w:?}");
        }
        assert!(pts.iter().all(|p| p.gflops > 0.0));
    }

    #[test]
    fn calibrated_threshold_is_sane_on_every_preset() {
        for arch in ArchSpec::all_presets() {
            let t = calibrate_tlp_threshold(&arch, 0.9);
            assert!(t.is_power_of_two());
            assert!(
                (1024..=arch.max_resident_threads() * 4).contains(&t),
                "{}: threshold {t}",
                arch.name
            );
        }
    }
}

//! `reproduce perf` — the tracked performance harness.
//!
//! Times the hot paths this repository optimises (the packed executor
//! against the unpacked baseline, the reference GEMM path, the
//! memoized autotuner and one Fig 9 grid) and writes the results as
//! `BENCH_executor.json` at the repository root so successive commits
//! can be compared. Criterion benches (`cargo bench -p ctb-bench`)
//! provide finer-grained numbers; this harness is the cheap,
//! machine-readable trajectory record.

use crate::figures::fig9_grid;
use ctb_core::autotune::autotune;
use ctb_core::{execute_plan, execute_plan_unpacked, Framework};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::{gen, GemmBatch};
use std::path::PathBuf;
use std::time::Instant;

/// One timed workload.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Stable workload identifier.
    pub workload: String,
    /// Wall-clock milliseconds. For iterated workloads (executor and
    /// reference entries) this is the best single iteration — the
    /// standard noise-robust kernel-timing estimate; autotune and the
    /// grid are single-shot totals.
    pub wall_ms: f64,
    /// Work items processed: executor/reference iterations, autotune
    /// candidate evaluations, or grid cells.
    pub evaluated: usize,
    /// Cache hits (simulation-memo hits for autotune, 0 elsewhere).
    pub cache_hits: usize,
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64() * 1e3, out)
}

/// Warm up once, then time `iters` runs and return the best
/// single-iteration milliseconds plus the last output. The minimum is
/// the noise-robust estimator: scheduler preemption and frequency
/// ramping only ever inflate a sample.
fn time_best_ms<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let (ms, o) = time_ms(&mut f);
        best = best.min(ms);
        out = o;
    }
    (best, out)
}

/// A Fig 9 grid cell used as the executor workload: batch 16 of
/// 128×128×256 — mid-grid, large enough that kernel time dominates
/// planning noise.
pub fn executor_workload() -> GemmBatch {
    GemmBatch::random(&gen::uniform_case(16, 128, 128, 256), 1.0, 0.5, 7)
}

/// Run the perf suite on `arch`.
pub fn run_perf(arch: &ArchSpec) -> Vec<PerfEntry> {
    let mut entries = Vec::new();

    // Executor: packed engine vs the unpacked baseline on the same plan.
    let batch = executor_workload();
    let fw = Framework::new(arch.clone());
    let plan = fw.plan(&batch.shapes).expect("plannable");
    const EXEC_ITERS: usize = 10;
    let (packed_ms, packed) = time_best_ms(EXEC_ITERS, || execute_plan(&batch, &plan.plan));
    entries.push(PerfEntry {
        workload: "execute_plan_packed_b16_128x128x256".into(),
        wall_ms: packed_ms,
        evaluated: EXEC_ITERS,
        cache_hits: 0,
    });
    let (unpacked_ms, unpacked) =
        time_best_ms(EXEC_ITERS, || execute_plan_unpacked(&batch, &plan.plan));
    entries.push(PerfEntry {
        workload: "execute_plan_unpacked_b16_128x128x256".into(),
        wall_ms: unpacked_ms,
        evaluated: EXEC_ITERS,
        cache_hits: 0,
    });
    // Guard: the two engines must agree bitwise or the timing is moot.
    for (p, u) in packed.iter().zip(&unpacked) {
        assert_eq!(p.as_slice(), u.as_slice(), "packed/unpacked results diverged");
    }

    // Reference path (parallel per-GEMM gemm_auto dispatch).
    let (ref_ms, _) = time_best_ms(EXEC_ITERS, || std::hint::black_box(batch.reference_result()));
    entries.push(PerfEntry {
        workload: "reference_result_b16_128x128x256".into(),
        wall_ms: ref_ms,
        evaluated: EXEC_ITERS,
        cache_hits: 0,
    });

    // Memoized autotune on the paper's uniform workload.
    let th = Thresholds::for_arch(arch);
    let shapes = gen::uniform_case(16, 128, 128, 128);
    let (tune_ms, result) = time_ms(|| autotune(arch, &shapes, &th));
    entries.push(PerfEntry {
        workload: "autotune_uniform_16x128x128x128".into(),
        wall_ms: tune_ms,
        evaluated: result.evaluated,
        cache_hits: result.memo_hits,
    });

    // One full Fig 9 grid (parallel cells).
    let (grid_ms, cells) = time_ms(|| fig9_grid(arch));
    entries.push(PerfEntry {
        workload: "fig9_grid_v100".into(),
        wall_ms: grid_ms,
        evaluated: cells.len(),
        cache_hits: 0,
    });

    entries
}

/// Serialize entries as the tracked JSON schema. Keys are stable:
/// `workload`, `wall_ms`, `evaluated`, `cache_hits`.
pub fn render_json(arch: &ArchSpec, entries: &[PerfEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bench\": \"executor\",\n  \"arch\": \"{}\",\n", arch.name));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"wall_ms\": {:.3}, \"evaluated\": {}, \"cache_hits\": {}}}{}\n",
            e.workload,
            e.wall_ms,
            e.evaluated,
            e.cache_hits,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Path of the tracked report: `BENCH_executor.json` at the repo root,
/// independent of the working directory the binary runs from.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("executor")
}

/// Run the suite and write the tracked report; returns the entries and
/// the path written.
pub fn run_and_write(arch: &ArchSpec) -> (Vec<PerfEntry>, PathBuf) {
    let entries = run_perf(arch);
    let path = crate::write_bench_json("executor", &render_json(arch, &entries));
    (entries, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_has_stable_keys() {
        let arch = ArchSpec::volta_v100();
        let entries = vec![PerfEntry {
            workload: "w".into(),
            wall_ms: 1.25,
            evaluated: 3,
            cache_hits: 2,
        }];
        let json = render_json(&arch, &entries);
        for key in ["\"bench\"", "\"arch\"", "\"entries\"", "\"workload\"", "\"wall_ms\"", "\"evaluated\"", "\"cache_hits\""] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
        assert!(json.contains("\"wall_ms\": 1.250"));
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_executor.json"));
        // The parent must contain the workspace manifest.
        let root = p.parent().unwrap();
        assert!(root.join("Cargo.toml").exists(), "expected repo root, got {root:?}");
    }
}

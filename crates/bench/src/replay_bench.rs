//! `reproduce replay` — the deterministic failure-replay harness.
//!
//! The serving stack's debugging story rests on one claim: a recorded
//! failure can be re-executed exactly. This harness proves it end to
//! end on the discrete-event cluster engine:
//!
//! 1. **Record** — a seeded exec-panic storm runs through an
//!    instrumented 2-device pool. Every injected panic snapshots the
//!    flight-recorder ring ([`ctb_obs::Obs::dump_flight`]); the run
//!    ends with a full obs trace and a set of flight dumps.
//! 2. **Re-run** — a brand-new engine with the same seeds replays the
//!    scenario from scratch. Its trace bytes and flight dumps must be
//!    identical to the recording.
//! 3. **Resume** — a third engine runs to the midpoint of the recorded
//!    event count, checkpoints via `ctb-savestate`, is dropped (the
//!    "crash"), and the blob is restored into a fresh engine that runs
//!    the remainder. The resumed trace and dumps must *also* match the
//!    recording byte for byte — crash/restore changes nothing.
//!
//! Results land in `BENCH_replay.json` at the repository root; the
//! `--smoke` variant writes `target/experiments/BENCH_replay_smoke.json`
//! so CI never clobbers tracked full-run numbers.

use ctb_cluster::{
    ClusterConfig, ClusterStats, EventCluster, EventConfig, ReqOutcome, SimTime,
};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_obs::Obs;
use ctb_serve::{BreakerPolicy, FaultConfig, FaultInjector};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Closed-loop inter-arrival gap (matches the chaos suites).
const GAP_NS: u64 = 1_000_000_000;

/// Knobs of the replay harness, each surfaced as a `reproduce replay`
/// CLI flag; [`Default`] is the tracked configuration.
#[derive(Debug, Clone)]
pub struct ReplayBenchConfig {
    /// Requests driven through the pool (`--requests`).
    pub requests: usize,
    /// Fault-injector seed — the identity of the recorded failure
    /// (`--seed`).
    pub seed: u64,
    /// Injected exec-panic rate on the fastest device (`--panics`).
    pub exec_panic_per_mille: u32,
}

impl Default for ReplayBenchConfig {
    fn default() -> Self {
        ReplayBenchConfig { requests: 160, seed: 0x5EED, exec_panic_per_mille: 350 }
    }
}

impl ReplayBenchConfig {
    /// The CI smoke variant: the same storm at a request count that
    /// finishes in seconds while still catching panics and tripping
    /// the breaker (the schema gate needs every section populated).
    pub fn smoke() -> Self {
        ReplayBenchConfig { requests: 48, ..ReplayBenchConfig::default() }
    }
}

/// What the recording run produced.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    pub events_processed: u64,
    pub completed: usize,
    /// Requests that exhausted re-routes and failed terminally.
    pub failed: usize,
    pub worker_panics: usize,
    pub breaker_trips: usize,
    /// Flight-recorder snapshots captured (one per panic / trip).
    pub flight_dumps: usize,
    /// Events across all flight dumps.
    pub dump_events: usize,
    /// Rendered obs trace size — the byte string both replays must hit.
    pub trace_bytes: usize,
}

/// Outcome of the two replay checks.
#[derive(Debug, Clone)]
pub struct ReplayCheck {
    /// From-scratch re-run reproduced trace + dumps + outcomes exactly.
    pub rerun_identical: bool,
    /// Event offset the crash/restore replay checkpointed at.
    pub resume_offset: u64,
    /// Size of the savestate blob at that offset.
    pub checkpoint_bytes: usize,
    /// Checkpoint → crash → restore → run reproduced everything exactly.
    pub resume_identical: bool,
}

/// The full tracked report.
#[derive(Debug, Clone)]
pub struct ReplayBenchReport {
    pub cfg: ReplayBenchConfig,
    pub recorded: RecordedRun,
    pub replay: ReplayCheck,
    pub wall_ms: f64,
}

/// Everything observable about a finished run — the comparison unit of
/// the harness (wall time deliberately excluded).
#[derive(PartialEq)]
struct Recording {
    outcomes: Vec<ReqOutcome>,
    stats: ClusterStats,
    events_processed: u64,
    trace: String,
    dumps: Vec<String>,
}

/// The chaos suites' 3-signature batch mix.
fn mix_shapes(i: usize) -> Arc<[GemmShape]> {
    let shape_mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(96, 96, 384); 2],
        &[GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 640)],
        &[GemmShape::new(128, 32, 32); 4],
    ];
    shape_mix[i % shape_mix.len()].into()
}

/// Build the scenario's instrumented engine with every request already
/// on the timeline: an exec-panic storm on the fastest device of a
/// 2-device pool, breaker tuned to trip mid-run.
fn build(cfg: &ReplayBenchConfig) -> (EventCluster, Arc<Obs>) {
    let cluster_cfg = ClusterConfig {
        breaker: BreakerPolicy { trip_threshold: 2, open_batches: 4 },
        ..ClusterConfig::default()
    };
    let faults = vec![
        Some(Arc::new(FaultInjector::new(
            FaultConfig::new(cfg.seed).exec_panic(cfg.exec_panic_per_mille),
        ))),
        None,
    ];
    let (mut eng, obs) = EventCluster::with_instrumentation(
        ArchSpec::pool_presets(2),
        EventConfig::from(&cluster_cfg),
        faults,
    );
    for i in 0..cfg.requests {
        eng.submit_at(SimTime(1 + i as u64 * GAP_NS), mix_shapes(i), i as u64);
    }
    (eng, obs)
}

fn run_to_completion(mut eng: EventCluster, obs: &Obs) -> Recording {
    let report = eng.run();
    assert_eq!(report.witness_mismatches, 0, "every witness stays bitwise-exact");
    Recording {
        outcomes: report.outcomes,
        stats: report.stats,
        events_processed: report.events_processed,
        trace: obs.render(),
        dumps: obs.flight_dumps().iter().map(ctb_obs::FlightDump::render).collect(),
    }
}

/// Run the scenario uninterrupted and keep the raw recording around for
/// the replay comparisons.
fn record(cfg: &ReplayBenchConfig) -> (Recording, usize) {
    let (eng, obs) = build(cfg);
    let dump_events: usize;
    let rec = {
        let r = run_to_completion(eng, &obs);
        dump_events = obs.flight_dumps().iter().map(|d| d.events.len()).sum();
        r
    };
    assert!(
        rec.stats.worker_panics > 0 && !rec.dumps.is_empty(),
        "the replay harness needs a recorded failure to replay \
         (seed {:#x} at {}‰ caught no panic)",
        cfg.seed,
        cfg.exec_panic_per_mille
    );
    (rec, dump_events)
}

/// Re-run the scenario from scratch on a brand-new engine.
fn rerun(cfg: &ReplayBenchConfig) -> Recording {
    let (eng, obs) = build(cfg);
    run_to_completion(eng, &obs)
}

/// Run to `offset` events, checkpoint, drop the engine (the "crash"),
/// restore the blob into a fresh engine and run the remainder.
fn resume(cfg: &ReplayBenchConfig, offset: u64) -> (Recording, usize) {
    let (mut eng, _obs) = build(cfg);
    assert_eq!(eng.run_steps(offset), offset, "offset beyond scenario length");
    let blob = eng.checkpoint();
    let blob_len = blob.len();
    drop(eng);
    let (restored, obs) =
        EventCluster::restore(ArchSpec::pool_presets(2), &blob).expect("checkpoint restores");
    let obs = obs.expect("instrumented checkpoint hands back its obs");
    (run_to_completion(restored, &obs), blob_len)
}

/// Run every section of the harness under `cfg`.
pub fn run_report(cfg: &ReplayBenchConfig) -> ReplayBenchReport {
    let t0 = Instant::now();
    let (recorded, dump_events) = record(cfg);
    let rerun_identical = rerun(cfg) == recorded;
    let resume_offset = (recorded.events_processed / 2).max(1);
    let (resumed, checkpoint_bytes) = resume(cfg, resume_offset);
    let resume_identical = resumed == recorded;
    let failed = recorded
        .outcomes
        .iter()
        .filter(|o| matches!(o, ReqOutcome::Failed { .. }))
        .count();
    ReplayBenchReport {
        cfg: cfg.clone(),
        recorded: RecordedRun {
            events_processed: recorded.events_processed,
            completed: recorded.stats.completed,
            failed,
            worker_panics: recorded.stats.worker_panics,
            breaker_trips: recorded.stats.breaker_trips,
            flight_dumps: recorded.dumps.len(),
            dump_events,
            trace_bytes: recorded.trace.len(),
        },
        replay: ReplayCheck {
            rerun_identical,
            resume_offset,
            checkpoint_bytes,
            resume_identical,
        },
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Serialize the report as the tracked JSON schema.
pub fn render_json(r: &ReplayBenchReport) -> String {
    format!(
        "{{\n  \"bench\": \"replay\",\n  \"scenario\": {{\n    \"devices\": 2,\n    \
         \"requests\": {},\n    \"seed\": {},\n    \"exec_panic_per_mille\": {}\n  }},\n  \
         \"recorded\": {{\n    \"events_processed\": {},\n    \"completed\": {},\n    \
         \"failed\": {},\n    \"worker_panics\": {},\n    \"breaker_trips\": {},\n    \
         \"flight_dumps\": {},\n    \"dump_events\": {},\n    \"trace_bytes\": {}\n  }},\n  \
         \"replay\": {{\n    \"rerun_identical\": {},\n    \"resume_offset\": {},\n    \
         \"checkpoint_bytes\": {},\n    \"resume_identical\": {}\n  }},\n  \
         \"wall_ms\": {:.3}\n}}\n",
        r.cfg.requests,
        r.cfg.seed,
        r.cfg.exec_panic_per_mille,
        r.recorded.events_processed,
        r.recorded.completed,
        r.recorded.failed,
        r.recorded.worker_panics,
        r.recorded.breaker_trips,
        r.recorded.flight_dumps,
        r.recorded.dump_events,
        r.recorded.trace_bytes,
        r.replay.rerun_identical,
        r.replay.resume_offset,
        r.replay.checkpoint_bytes,
        r.replay.resume_identical,
        r.wall_ms
    )
}

/// Path of the tracked report: `BENCH_replay.json` at the repo root.
pub fn report_path() -> PathBuf {
    crate::bench_json_path("replay")
}

/// Path of the checked-in golden schema the drift gate diffs against.
pub fn golden_schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scripts/BENCH_replay.schema")
}

/// Run `cfg` and write the tracked `BENCH_replay.json`; returns the
/// report and the path written.
pub fn run_and_write(cfg: &ReplayBenchConfig) -> (ReplayBenchReport, PathBuf) {
    let report = run_report(cfg);
    let path = crate::write_bench_json("replay", &render_json(&report));
    (report, path)
}

/// Run the smoke configuration and write it under `target/experiments/`
/// (NOT the tracked root file — the CI gate must not clobber the
/// tracked full-run numbers with smoke numbers).
pub fn run_and_write_smoke() -> (ReplayBenchReport, PathBuf) {
    let report = run_report(&ReplayBenchConfig::smoke());
    let path = crate::experiments_dir().join("BENCH_replay_smoke.json");
    std::fs::write(&path, render_json(&report))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    (report, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_records_and_replays_exactly() {
        let r = run_report(&ReplayBenchConfig::smoke());
        assert!(r.recorded.worker_panics > 0, "the storm must catch panics");
        assert!(r.recorded.flight_dumps > 0, "every panic snapshots the flight ring");
        assert!(r.recorded.dump_events > 0);
        assert!(r.recorded.trace_bytes > 0);
        assert!(r.replay.rerun_identical, "from-scratch re-run must be byte-identical");
        assert!(r.replay.resume_identical, "crash/restore replay must be byte-identical");
        assert!(r.replay.checkpoint_bytes > 0);
        assert!(r.replay.resume_offset > 0);
    }

    #[test]
    fn different_seeds_record_different_failures() {
        let a = record(&ReplayBenchConfig::smoke()).0;
        let b = record(&ReplayBenchConfig { seed: 0xBAD5EED, ..ReplayBenchConfig::smoke() }).0;
        assert_ne!(a.trace, b.trace, "the seed is the identity of the recorded failure");
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let r = ReplayBenchReport {
            cfg: ReplayBenchConfig::default(),
            recorded: RecordedRun {
                events_processed: 1000,
                completed: 150,
                failed: 10,
                worker_panics: 40,
                breaker_trips: 2,
                flight_dumps: 42,
                dump_events: 500,
                trace_bytes: 90_000,
            },
            replay: ReplayCheck {
                rerun_identical: true,
                resume_offset: 500,
                checkpoint_bytes: 7_000,
                resume_identical: true,
            },
            wall_ms: 120.0,
        };
        let json = render_json(&r);
        for key in [
            "\"bench\"",
            "\"scenario\"",
            "\"requests\"",
            "\"seed\"",
            "\"exec_panic_per_mille\"",
            "\"recorded\"",
            "\"events_processed\"",
            "\"worker_panics\"",
            "\"flight_dumps\"",
            "\"dump_events\"",
            "\"trace_bytes\"",
            "\"replay\"",
            "\"rerun_identical\"",
            "\"resume_offset\"",
            "\"checkpoint_bytes\"",
            "\"resume_identical\"",
            "\"wall_ms\"",
        ] {
            assert!(json.contains(key), "missing key {key} in {json}");
        }
    }

    #[test]
    fn report_path_is_the_repo_root() {
        let p = report_path();
        assert!(p.ends_with("BENCH_replay.json"));
        assert!(p.parent().unwrap().join("Cargo.toml").exists());
    }
}

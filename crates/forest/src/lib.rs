//! Random-forest classifier for the on-line batching-policy selection of
//! §5.
//!
//! The paper trains a random forest over >400 batched-GEMM samples,
//! using the average M, N, K and the batch size B as features and the
//! best-performing batching heuristic as the label. Each decision tree
//! is a weak learner; a prediction walks every tree to a leaf holding a
//! per-class probability vector, sums the vectors, and picks the class
//! with the maximal probability — exactly the procedure described in §5.
//!
//! The implementation is a from-scratch CART (Gini impurity, axis
//! -aligned splits) with bootstrap bagging and per-split feature
//! subsampling. It is deliberately generic: features are `&[f64]`,
//! labels are small class indices, so other crates can reuse it.

pub mod codec;
pub mod forest;
pub mod tree;

pub use forest::{FitReport, ForestConfig, RandomForest};
pub use tree::DecisionTree;

//! Compact text (de)serialisation for trained forests.
//!
//! Dependency policy (DESIGN.md §5) keeps the external crate list to the
//! allowed set, so instead of pulling in a serde format crate this module
//! hand-rolls a line-oriented codec:
//!
//! ```text
//! forest <n_trees> <n_classes>
//! tree <n_nodes>
//! s <feature> <threshold> <left> <right>
//! l <p0> <p1> ...
//! ```

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Serialise a forest to the text format.
pub fn encode(forest: &RandomForest) -> String {
    let mut out = String::new();
    out.push_str(&format!("forest {} {}\n", forest.trees.len(), forest.n_classes));
    for tree in &forest.trees {
        out.push_str(&format!("tree {}\n", tree.nodes().len()));
        for node in tree.nodes() {
            match node {
                Node::Split { feature, threshold, left, right } => {
                    out.push_str(&format!("s {feature} {threshold:e} {left} {right}\n"));
                }
                Node::Leaf { probs } => {
                    out.push('l');
                    for p in probs {
                        out.push_str(&format!(" {p:e}"));
                    }
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// Parse a forest from the text format.
pub fn decode(text: &str) -> Result<RandomForest, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty input")?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("forest") {
        return Err("missing 'forest' header".into());
    }
    let n_trees: usize = hp
        .next()
        .ok_or("missing tree count")?
        .parse()
        .map_err(|e| format!("bad tree count: {e}"))?;
    let n_classes: usize = hp
        .next()
        .ok_or("missing class count")?
        .parse()
        .map_err(|e| format!("bad class count: {e}"))?;

    // Counts come from untrusted text: cap the pre-allocation so a
    // forged header like `forest 99999999999999 2` costs a parse error,
    // not an allocation abort. The real length check is the per-item
    // loop below, which demands an actual line per claimed node.
    let mut trees = Vec::with_capacity(n_trees.min(1024));
    for t in 0..n_trees {
        let th = lines.next().ok_or_else(|| format!("missing tree {t} header"))?;
        let mut tp = th.split_whitespace();
        if tp.next() != Some("tree") {
            return Err(format!("tree {t}: missing 'tree' header"));
        }
        let n_nodes: usize = tp
            .next()
            .ok_or("missing node count")?
            .parse()
            .map_err(|e| format!("bad node count: {e}"))?;
        let mut nodes = Vec::with_capacity(n_nodes.min(4096));
        for n in 0..n_nodes {
            let line = lines.next().ok_or_else(|| format!("tree {t}: missing node {n}"))?;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("s") => {
                    let mut next_num = || -> Result<f64, String> {
                        parts
                            .next()
                            .ok_or_else(|| format!("tree {t} node {n}: truncated split"))?
                            .parse::<f64>()
                            .map_err(|e| format!("tree {t} node {n}: {e}"))
                    };
                    let feature = next_num()? as usize;
                    let threshold = next_num()?;
                    let left = next_num()? as usize;
                    let right = next_num()? as usize;
                    if left >= n_nodes || right >= n_nodes {
                        return Err(format!("tree {t} node {n}: child out of range"));
                    }
                    nodes.push(Node::Split { feature, threshold, left, right });
                }
                Some("l") => {
                    let probs: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
                    let probs = probs.map_err(|e| format!("tree {t} node {n}: {e}"))?;
                    if probs.len() != n_classes {
                        return Err(format!(
                            "tree {t} node {n}: {} probs, expected {n_classes}",
                            probs.len()
                        ));
                    }
                    nodes.push(Node::Leaf { probs });
                }
                other => return Err(format!("tree {t} node {n}: bad tag {other:?}")),
            }
        }
        trees.push(DecisionTree::from_nodes(nodes, n_classes));
    }
    Ok(RandomForest { trees, n_classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained() -> (RandomForest, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<f64>> =
            (0..200).map(|_| vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]).collect();
        let labels: Vec<usize> = samples.iter().map(|s| usize::from(s[0] + s[1] > 100.0)).collect();
        (RandomForest::fit(&samples, &labels, 2, &ForestConfig::default()), samples)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (forest, samples) = trained();
        let text = encode(&forest);
        let back = decode(&text).expect("decodes");
        assert_eq!(back, forest);
        for s in samples.iter().take(50) {
            assert_eq!(forest.predict(s), back.predict(s));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("").is_err());
        assert!(decode("florest 1 2").is_err());
        assert!(decode("forest 1 2\ntree 1\nx 1 2 3").is_err());
        // Truncated tree.
        assert!(decode("forest 1 2\ntree 2\nl 0.5 0.5\n").is_err());
        // Wrong class arity in a leaf.
        assert!(decode("forest 1 2\ntree 1\nl 1.0\n").is_err());
        // Child index out of range.
        assert!(decode("forest 1 2\ntree 1\ns 0 1.0 5 6\n").is_err());
    }

    #[test]
    fn encoding_is_stable() {
        let (forest, _) = trained();
        assert_eq!(encode(&forest), encode(&decode(&encode(&forest)).unwrap()));
    }

    #[test]
    fn empty_forest_round_trips() {
        let empty = RandomForest { trees: vec![], n_classes: 3 };
        let text = encode(&empty);
        let back = decode(&text).expect("empty forest is representable");
        assert_eq!(back, empty);
        assert_eq!(encode(&back), text);
    }

    #[test]
    fn single_leaf_tree_round_trips() {
        let back = decode("forest 1 2\ntree 1\nl 0.25 0.75\n").expect("single leaf");
        assert_eq!(back.trees.len(), 1);
        assert_eq!(back.trees[0].nodes().len(), 1);
        assert_eq!(back.predict(&[123.0, -4.0]), 1, "leaf probs pick class 1");
        assert_eq!(decode(&encode(&back)).unwrap(), back);
    }

    #[test]
    fn deep_left_spine_tree_round_trips() {
        // 600 chained splits ending in one leaf: every split sends
        // "left" one node deeper and "right" to the terminal leaf, so
        // prediction walks the full 600-deep spine for small features.
        const SPLITS: usize = 600;
        let mut text = format!("forest 1 2\ntree {}\n", SPLITS + 1);
        for i in 0..SPLITS {
            text.push_str(&format!("s 0 {}.5 {} {SPLITS}\n", i, i + 1));
        }
        text.push_str("l 1.0 0.0\n");
        let forest = decode(&text).expect("deep tree decodes");
        assert_eq!(forest.trees[0].nodes().len(), SPLITS + 1);
        // Walks all SPLITS splits without blowing the stack, lands on
        // the leaf either way.
        assert_eq!(forest.predict(&[-1.0]), 0);
        assert_eq!(forest.predict(&[1e9]), 0);
        assert_eq!(decode(&encode(&forest)).unwrap(), forest);
    }

    #[test]
    fn every_truncation_errs_or_decodes_without_panicking() {
        // Chop a valid encoding at every char boundary: the decoder must
        // return a typed error or a well-formed forest — never panic,
        // never abort on a forged length.
        let (forest, _) = trained();
        let text = encode(&forest);
        for (i, _) in text.char_indices() {
            match decode(&text[..i]) {
                Ok(f) => {
                    // Prefixes that happen to parse (e.g. the full text
                    // minus trailing digits) must still be internally
                    // consistent.
                    assert_eq!(f.n_classes, forest.n_classes);
                    assert_eq!(f.trees.len(), forest.trees.len());
                }
                Err(e) => assert!(!e.is_empty(), "errors carry a message"),
            }
        }
    }

    #[test]
    fn forged_huge_counts_are_errors_not_allocation_aborts() {
        // Overflows usize: parse error.
        assert!(decode("forest 99999999999999999999 2").is_err());
        // Fits usize but claims absurd trees/nodes: the clamped
        // pre-allocation keeps this a cheap "missing line" error.
        assert!(decode("forest 9999999999 2").is_err());
        assert!(decode("forest 1 2\ntree 9999999999\nl 0.5 0.5\n").is_err());
        // NaN-ish and negative counts are parse errors too.
        assert!(decode("forest -3 2").is_err());
        assert!(decode("forest 1 2\ntree -1\n").is_err());
    }
}

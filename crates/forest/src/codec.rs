//! Compact text (de)serialisation for trained forests.
//!
//! Dependency policy (DESIGN.md §5) keeps the external crate list to the
//! allowed set, so instead of pulling in a serde format crate this module
//! hand-rolls a line-oriented codec:
//!
//! ```text
//! forest <n_trees> <n_classes>
//! tree <n_nodes>
//! s <feature> <threshold> <left> <right>
//! l <p0> <p1> ...
//! ```

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Serialise a forest to the text format.
pub fn encode(forest: &RandomForest) -> String {
    let mut out = String::new();
    out.push_str(&format!("forest {} {}\n", forest.trees.len(), forest.n_classes));
    for tree in &forest.trees {
        out.push_str(&format!("tree {}\n", tree.nodes().len()));
        for node in tree.nodes() {
            match node {
                Node::Split { feature, threshold, left, right } => {
                    out.push_str(&format!("s {feature} {threshold:e} {left} {right}\n"));
                }
                Node::Leaf { probs } => {
                    out.push('l');
                    for p in probs {
                        out.push_str(&format!(" {p:e}"));
                    }
                    out.push('\n');
                }
            }
        }
    }
    out
}

/// Parse a forest from the text format.
pub fn decode(text: &str) -> Result<RandomForest, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty input")?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("forest") {
        return Err("missing 'forest' header".into());
    }
    let n_trees: usize = hp
        .next()
        .ok_or("missing tree count")?
        .parse()
        .map_err(|e| format!("bad tree count: {e}"))?;
    let n_classes: usize = hp
        .next()
        .ok_or("missing class count")?
        .parse()
        .map_err(|e| format!("bad class count: {e}"))?;

    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        let th = lines.next().ok_or_else(|| format!("missing tree {t} header"))?;
        let mut tp = th.split_whitespace();
        if tp.next() != Some("tree") {
            return Err(format!("tree {t}: missing 'tree' header"));
        }
        let n_nodes: usize = tp
            .next()
            .ok_or("missing node count")?
            .parse()
            .map_err(|e| format!("bad node count: {e}"))?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for n in 0..n_nodes {
            let line = lines.next().ok_or_else(|| format!("tree {t}: missing node {n}"))?;
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("s") => {
                    let mut next_num = || -> Result<f64, String> {
                        parts
                            .next()
                            .ok_or_else(|| format!("tree {t} node {n}: truncated split"))?
                            .parse::<f64>()
                            .map_err(|e| format!("tree {t} node {n}: {e}"))
                    };
                    let feature = next_num()? as usize;
                    let threshold = next_num()?;
                    let left = next_num()? as usize;
                    let right = next_num()? as usize;
                    if left >= n_nodes || right >= n_nodes {
                        return Err(format!("tree {t} node {n}: child out of range"));
                    }
                    nodes.push(Node::Split { feature, threshold, left, right });
                }
                Some("l") => {
                    let probs: Result<Vec<f64>, _> = parts.map(str::parse::<f64>).collect();
                    let probs = probs.map_err(|e| format!("tree {t} node {n}: {e}"))?;
                    if probs.len() != n_classes {
                        return Err(format!(
                            "tree {t} node {n}: {} probs, expected {n_classes}",
                            probs.len()
                        ));
                    }
                    nodes.push(Node::Leaf { probs });
                }
                other => return Err(format!("tree {t} node {n}: bad tag {other:?}")),
            }
        }
        trees.push(DecisionTree::from_nodes(nodes, n_classes));
    }
    Ok(RandomForest { trees, n_classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained() -> (RandomForest, Vec<Vec<f64>>) {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<f64>> =
            (0..200).map(|_| vec![rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]).collect();
        let labels: Vec<usize> = samples.iter().map(|s| usize::from(s[0] + s[1] > 100.0)).collect();
        (RandomForest::fit(&samples, &labels, 2, &ForestConfig::default()), samples)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (forest, samples) = trained();
        let text = encode(&forest);
        let back = decode(&text).expect("decodes");
        assert_eq!(back, forest);
        for s in samples.iter().take(50) {
            assert_eq!(forest.predict(s), back.predict(s));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode("").is_err());
        assert!(decode("florest 1 2").is_err());
        assert!(decode("forest 1 2\ntree 1\nx 1 2 3").is_err());
        // Truncated tree.
        assert!(decode("forest 1 2\ntree 2\nl 0.5 0.5\n").is_err());
        // Wrong class arity in a leaf.
        assert!(decode("forest 1 2\ntree 1\nl 1.0\n").is_err());
        // Child index out of range.
        assert!(decode("forest 1 2\ntree 1\ns 0 1.0 5 6\n").is_err());
    }

    #[test]
    fn encoding_is_stable() {
        let (forest, _) = trained();
        assert_eq!(encode(&forest), encode(&decode(&encode(&forest)).unwrap()));
    }
}

//! Bootstrap-bagged random forest.

use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees (weak learners).
    pub n_trees: usize,
    /// Maximum depth of each tree — the paper quotes 7–8 comparisons on
    /// average per query, i.e. shallow trees.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = sqrt of feature count).
    pub features_per_split: Option<usize>,
    /// RNG seed for bagging and feature subsampling (deterministic
    /// training).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 16,
            max_depth: 8,
            min_samples_split: 4,
            features_per_split: None,
            seed: 0x5eed,
        }
    }
}

/// A trained random forest classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    pub(crate) trees: Vec<DecisionTree>,
    pub(crate) n_classes: usize,
}

/// Training diagnostics: out-of-bag generalisation estimate and
/// per-feature importance.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Accuracy of out-of-bag majority votes — an unbiased
    /// generalisation estimate that needs no held-out set. `None` when
    /// every sample landed in every bootstrap (tiny data).
    pub oob_accuracy: Option<f64>,
    /// Mean-decrease-in-impurity per feature, normalised to sum to 1
    /// (all zeros when no split was ever made).
    pub feature_importance: Vec<f64>,
}

impl RandomForest {
    /// Train on `samples`/`labels` (labels `< n_classes`). Each tree
    /// fits a bootstrap resample of the data and subsamples features at
    /// every split.
    pub fn fit(
        samples: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        cfg: &ForestConfig,
    ) -> Self {
        RandomForest::fit_with_report(samples, labels, n_classes, cfg).0
    }

    /// As [`RandomForest::fit`], also returning out-of-bag accuracy and
    /// feature importances.
    pub fn fit_with_report(
        samples: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        cfg: &ForestConfig,
    ) -> (Self, FitReport) {
        assert!(!samples.is_empty(), "empty training set");
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        assert!(n_classes >= 2, "need at least two classes");
        let n_features = samples[0].len();
        let per_split = cfg
            .features_per_split
            .unwrap_or_else(|| (n_features as f64).sqrt().ceil() as usize)
            .clamp(1, n_features);
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_split: cfg.min_samples_split,
            features_per_split: Some(per_split),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut importance = vec![0.0f64; n_features];
        // Out-of-bag vote tallies: votes[sample][class].
        let mut votes = vec![vec![0usize; n_classes]; samples.len()];
        let trees: Vec<DecisionTree> = (0..cfg.n_trees)
            .map(|_| {
                let idx: Vec<usize> =
                    (0..samples.len()).map(|_| rng.random_range(0..samples.len())).collect();
                let tree = DecisionTree::fit_tracked(
                    samples,
                    labels,
                    &idx,
                    n_classes,
                    &tree_cfg,
                    &mut rng,
                    &mut importance,
                );
                let in_bag: std::collections::HashSet<usize> = idx.iter().copied().collect();
                for (s, sample) in samples.iter().enumerate() {
                    if !in_bag.contains(&s) {
                        votes[s][tree.predict(sample)] += 1;
                    }
                }
                tree
            })
            .collect();

        let mut voted = 0usize;
        let mut correct = 0usize;
        for (s, v) in votes.iter().enumerate() {
            let total: usize = v.iter().sum();
            if total == 0 {
                continue;
            }
            voted += 1;
            let pred = v
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .expect("non-empty");
            correct += usize::from(pred == labels[s]);
        }
        let oob_accuracy = (voted > 0).then(|| correct as f64 / voted as f64);
        let total_importance: f64 = importance.iter().sum();
        if total_importance > 0.0 {
            for v in &mut importance {
                *v /= total_importance;
            }
        }
        (
            RandomForest { trees, n_classes },
            FitReport { oob_accuracy, feature_importance: importance },
        )
    }

    /// Summed per-class probabilities over all trees (§5: "obtain the
    /// arrived leaf nodes of all decision trees and sum them up").
    pub fn predict_probs(&self, features: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_probs(features)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Class with maximal summed probability.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.predict_probs(features)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty class vector")
    }

    /// Training-set accuracy (sanity metric; the benches report held-out
    /// accuracy separately).
    pub fn accuracy(&self, samples: &[Vec<f64>], labels: &[usize]) -> f64 {
        let correct = samples
            .iter()
            .zip(labels)
            .filter(|(s, &l)| self.predict(s) == l)
            .count();
        correct as f64 / samples.len().max(1) as f64
    }

    /// Average comparisons per prediction across trees (the paper's
    /// "7–8 comparisons on average" overhead claim).
    pub fn avg_path_depth(&self, features: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let total: usize = self.trees.iter().map(|t| t.path_depth(features)).sum();
        total as f64 / self.trees.len() as f64
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total nodes across every tree (splits + leaves) — the forest's
    /// memory-footprint proxy.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }

    /// Deepest leaf of any tree, in comparisons from the root.
    pub fn max_depth(&self) -> usize {
        self.trees.iter().map(|t| t.max_depth()).max().unwrap_or(0)
    }

    /// Leaf-depth histogram over every tree: `hist[d]` = number of
    /// leaves at depth `d`, forest-wide. Length is `max_depth() + 1`
    /// (empty for an empty forest).
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for tree in &self.trees {
            tree.leaf_depth_histogram_into(&mut hist);
        }
        hist
    }

    /// How many split nodes test each feature, forest-wide. The result
    /// has at least `n_features` entries (zeros for never-split
    /// features), longer only if a tree references a higher index.
    pub fn feature_split_counts(&self, n_features: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_features];
        for tree in &self.trees {
            tree.feature_split_counts_into(&mut counts);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic task mimicking the selector's: class 1 when K is
    /// small and B is large (batch deeply), class 0 otherwise.
    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let m = rng.random_range(16.0..512.0);
            let nn = rng.random_range(16.0..512.0);
            let k = rng.random_range(16.0..1024.0);
            let b = rng.random_range(4.0..32.0);
            samples.push(vec![m, nn, k, b]);
            labels.push(usize::from(k < 128.0 && b > 8.0));
        }
        (samples, labels)
    }

    #[test]
    fn forest_learns_the_synthetic_rule() {
        let (samples, labels) = synthetic(400, 1);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        assert!(forest.accuracy(&samples, &labels) > 0.95);
        // Held-out generalisation.
        let (test_s, test_l) = synthetic(200, 2);
        assert!(forest.accuracy(&test_s, &test_l) > 0.85);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (samples, labels) = synthetic(100, 3);
        let a = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        let b = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        assert_eq!(a, b);
        let c = RandomForest::fit(
            &samples,
            &labels,
            2,
            &ForestConfig { seed: 99, ..ForestConfig::default() },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn probabilities_are_normalised() {
        let (samples, labels) = synthetic(100, 4);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        let p = forest.predict_probs(&samples[0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn path_depth_is_shallow() {
        // The paper's selection overhead claim: ~7-8 comparisons.
        let (samples, labels) = synthetic(400, 5);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        let avg = forest.avg_path_depth(&samples[0]);
        assert!(avg <= 8.0, "avg path depth {avg}");
    }

    #[test]
    fn oob_accuracy_estimates_generalisation() {
        let (samples, labels) = synthetic(400, 11);
        let (forest, report) =
            RandomForest::fit_with_report(&samples, &labels, 2, &ForestConfig::default());
        let oob = report.oob_accuracy.expect("enough data for OOB votes");
        // OOB should roughly track held-out accuracy.
        let (test_s, test_l) = synthetic(200, 12);
        let held_out = forest.accuracy(&test_s, &test_l);
        assert!(oob > 0.7, "oob {oob}");
        assert!((oob - held_out).abs() < 0.2, "oob {oob} vs held-out {held_out}");
    }

    #[test]
    fn feature_importance_identifies_the_informative_features() {
        // Label depends only on features 2 (K) and 3 (B).
        let (samples, labels) = synthetic(400, 13);
        let (_, report) =
            RandomForest::fit_with_report(&samples, &labels, 2, &ForestConfig::default());
        let imp = &report.feature_importance;
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[2] + imp[3] > imp[0] + imp[1],
            "informative features should dominate: {imp:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let _ = RandomForest::fit(&[], &[], 2, &ForestConfig::default());
    }

    #[test]
    fn introspection_is_consistent_with_structure() {
        let (samples, labels) = synthetic(400, 21);
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        let hist = forest.depth_histogram();
        // Histogram length is max depth + 1, bounded by the config.
        assert_eq!(hist.len(), forest.max_depth() + 1);
        assert!(forest.max_depth() <= ForestConfig::default().max_depth);
        // Leaves = splits + trees in a binary arena: every tree has
        // exactly one more leaf than split nodes.
        let leaves: usize = hist.iter().sum();
        let splits: usize = forest.feature_split_counts(4).iter().sum();
        assert_eq!(leaves, splits + forest.n_trees());
        assert_eq!(forest.total_nodes(), leaves + splits);
        // The synthetic rule only tests K (2) and B (3); those features
        // should attract more splits than M/N combined.
        let c = forest.feature_split_counts(4);
        assert_eq!(c.len(), 4);
        assert!(c[2] + c[3] > c[0] + c[1], "split counts {c:?}");
    }

    #[test]
    fn single_leaf_forest_has_depth_zero() {
        let samples = vec![vec![1.0, 2.0]; 8];
        let labels = vec![1usize; 8];
        let forest = RandomForest::fit(&samples, &labels, 2, &ForestConfig::default());
        assert_eq!(forest.max_depth(), 0);
        assert_eq!(forest.depth_histogram(), vec![forest.n_trees()]);
        assert_eq!(forest.feature_split_counts(2), vec![0, 0]);
    }
}

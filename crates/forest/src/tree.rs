//! CART decision tree with Gini-impurity splits.

use rand::rngs::StdRng;
use rand::RngExt;

/// One node of a decision tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal node: go left when `features[feature] <= threshold`.
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    /// Leaf: class probability vector (sums to 1 unless empty).
    Leaf { probs: Vec<f64> },
}

/// A single CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

/// Training hyper-parameters for one tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all) — the random-forest
    /// feature subsampling hook.
    pub features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_samples_split: 4, features_per_split: None }
    }
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn class_counts(labels: &[usize], idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[labels[i]] += 1;
    }
    counts
}

impl DecisionTree {
    /// Fit a tree on `samples` (rows of equal width) and `labels`
    /// (class indices `< n_classes`), restricted to the rows in `idx`
    /// (the bootstrap sample). `rng` drives feature subsampling.
    pub fn fit(
        samples: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut importance = vec![0.0; samples.first().map_or(0, Vec::len)];
        DecisionTree::fit_tracked(samples, labels, idx, n_classes, cfg, rng, &mut importance)
    }

    /// As [`DecisionTree::fit`], additionally accumulating each
    /// feature's total weighted Gini decrease into `importance` (the
    /// standard mean-decrease-in-impurity signal).
    pub fn fit_tracked(
        samples: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        rng: &mut StdRng,
        importance: &mut [f64],
    ) -> Self {
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        assert!(!idx.is_empty(), "cannot fit on an empty sample");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        let mut tree = DecisionTree { nodes: Vec::new(), n_classes };
        tree.build(samples, labels, idx, 0, cfg, rng, importance);
        tree
    }

    fn leaf(&mut self, counts: &[usize]) -> usize {
        let total: usize = counts.iter().sum();
        let probs = if total == 0 {
            vec![1.0 / self.n_classes as f64; self.n_classes]
        } else {
            counts.iter().map(|&c| c as f64 / total as f64).collect()
        };
        self.nodes.push(Node::Leaf { probs });
        self.nodes.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        samples: &[Vec<f64>],
        labels: &[usize],
        idx: &[usize],
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut StdRng,
        importance: &mut [f64],
    ) -> usize {
        let counts = class_counts(labels, idx, self.n_classes);
        let impure = gini(&counts);
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || impure == 0.0 {
            return self.leaf(&counts);
        }

        let n_features = samples[0].len();
        let k = cfg.features_per_split.unwrap_or(n_features).clamp(1, n_features);
        // Sample k distinct feature indices.
        let mut feats: Vec<usize> = (0..n_features).collect();
        for i in 0..k {
            let j = rng.random_range(i..n_features);
            feats.swap(i, j);
        }
        let feats = &feats[..k];

        // Best (feature, threshold) by weighted-Gini reduction, scanning
        // midpoints between consecutive sorted distinct values.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in feats {
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| samples[a][f].total_cmp(&samples[b][f]));
            let mut left = vec![0usize; self.n_classes];
            let mut right = counts.clone();
            for w in 0..order.len() - 1 {
                let i = order[w];
                left[labels[i]] += 1;
                right[labels[i]] -= 1;
                let (va, vb) = (samples[order[w]][f], samples[order[w + 1]][f]);
                if va == vb {
                    continue;
                }
                let nl = (w + 1) as f64;
                let nr = (order.len() - w - 1) as f64;
                let score =
                    (nl * gini(&left) + nr * gini(&right)) / order.len() as f64;
                if best.is_none_or(|(_, _, s)| score < s) {
                    best = Some((f, (va + vb) / 2.0, score));
                }
            }
        }

        let Some((feature, threshold, score)) = best else {
            return self.leaf(&counts);
        };
        if score >= impure - 1e-12 {
            // No useful reduction.
            return self.leaf(&counts);
        }

        let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| samples[i][feature] <= threshold);
        if l_idx.is_empty() || r_idx.is_empty() {
            return self.leaf(&counts);
        }
        // Weighted impurity decrease credited to the split feature.
        importance[feature] += idx.len() as f64 * (impure - score);
        // Reserve our slot before recursing so children indices are
        // stable.
        let me = self.nodes.len();
        self.nodes.push(Node::Split { feature, threshold, left: 0, right: 0 });
        let left = self.build(samples, labels, &l_idx, depth + 1, cfg, rng, importance);
        let right = self.build(samples, labels, &r_idx, depth + 1, cfg, rng, importance);
        self.nodes[me] = Node::Split { feature, threshold, left, right };
        me
        // Note: `build` for the root is called with an empty arena, so
        // the root always ends up at whatever index the recursion
        // assigned last; `predict` walks from `root()` below.
    }

    fn root(&self) -> usize {
        // The arena is built with the root either at 0 (pure leaf) or at
        // the first Split pushed; both cases are index 0.
        0
    }

    /// Per-class probability vector for `features`.
    pub fn predict_probs(&self, features: &[f64]) -> &[f64] {
        let mut n = self.root();
        loop {
            match &self.nodes[n] {
                Node::Leaf { probs } => return probs,
                Node::Split { feature, threshold, left, right } => {
                    n = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Most probable class for `features`.
    pub fn predict(&self, features: &[f64]) -> usize {
        let probs = self.predict_probs(features);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty class vector")
    }

    /// Average comparisons on a prediction path (the paper quotes 7–8
    /// per forest query): here, the depth to the leaf for `features`.
    pub fn path_depth(&self, features: &[f64]) -> usize {
        let mut n = self.root();
        let mut depth = 0;
        loop {
            match &self.nodes[n] {
                Node::Leaf { .. } => return depth,
                Node::Split { feature, threshold, left, right } => {
                    depth += 1;
                    n = if features[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total nodes in the arena (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest leaf, in split comparisons from the root (a pure-leaf
    /// tree has depth 0).
    pub fn max_depth(&self) -> usize {
        self.walk_leaves(&mut |_depth| {})
    }

    /// Accumulate this tree's leaf depths into `hist` (index = depth,
    /// value = leaf count), growing it as needed.
    pub fn leaf_depth_histogram_into(&self, hist: &mut Vec<usize>) {
        self.walk_leaves(&mut |depth| {
            if hist.len() <= depth {
                hist.resize(depth + 1, 0);
            }
            hist[depth] += 1;
        });
    }

    /// Accumulate how many split nodes test each feature into `counts`
    /// (index = feature), growing it as needed.
    pub fn feature_split_counts_into(&self, counts: &mut Vec<usize>) {
        for node in &self.nodes {
            if let Node::Split { feature, .. } = node {
                if counts.len() <= *feature {
                    counts.resize(*feature + 1, 0);
                }
                counts[*feature] += 1;
            }
        }
    }

    /// Depth-first walk calling `on_leaf(depth)` per leaf; returns the
    /// maximum leaf depth. Iterative (explicit stack) so pathological
    /// trees cannot overflow the call stack.
    fn walk_leaves(&self, on_leaf: &mut dyn FnMut(usize)) -> usize {
        let mut max = 0;
        let mut stack = vec![(self.root(), 0usize)];
        while let Some((n, depth)) = stack.pop() {
            match &self.nodes[n] {
                Node::Leaf { .. } => {
                    max = max.max(depth);
                    on_leaf(depth);
                }
                Node::Split { left, right, .. } => {
                    stack.push((*left, depth + 1));
                    stack.push((*right, depth + 1));
                }
            }
        }
        max
    }

    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub(crate) fn from_nodes(nodes: Vec<Node>, n_classes: usize) -> Self {
        DecisionTree { nodes, n_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn fit_all(samples: &[Vec<f64>], labels: &[usize], n: usize) -> DecisionTree {
        let idx: Vec<usize> = (0..samples.len()).collect();
        DecisionTree::fit(samples, labels, &idx, n, &TreeConfig::default(), &mut rng())
    }

    #[test]
    fn gini_of_pure_and_even() {
        assert_eq!(gini(&[5, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn learns_a_threshold() {
        // 1-D, label = x > 10.
        let samples: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i > 10)).collect();
        let tree = fit_all(&samples, &labels, 2);
        for i in 0..40 {
            assert_eq!(tree.predict(&[i as f64]), usize::from(i > 10), "x = {i}");
        }
    }

    #[test]
    fn learns_a_two_feature_rule() {
        // label 1 iff x > 5 && y > 5 — needs depth 2.
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for x in 0..12 {
            for y in 0..12 {
                samples.push(vec![x as f64, y as f64]);
                labels.push(usize::from(x > 5 && y > 5));
            }
        }
        let tree = fit_all(&samples, &labels, 2);
        let errors = samples
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| tree.predict(s) != l)
            .count();
        assert_eq!(errors, 0);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let samples = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let tree = fit_all(&samples, &labels, 2);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
        assert_eq!(tree.path_depth(&[5.0]), 0);
    }

    #[test]
    fn probabilities_reflect_leaf_composition() {
        // Identical features, mixed labels: one leaf with 0.75/0.25.
        let samples = vec![vec![1.0]; 4];
        let labels = vec![0, 0, 0, 1];
        let tree = fit_all(&samples, &labels, 2);
        let p = tree.predict_probs(&[1.0]);
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn depth_limit_is_respected() {
        let samples: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..256).map(|i| (i / 2) % 2).collect();
        let idx: Vec<usize> = (0..256).collect();
        let cfg = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&samples, &labels, &idx, 2, &cfg, &mut rng());
        for i in 0..256 {
            assert!(tree.path_depth(&[i as f64]) <= 3);
        }
    }
}

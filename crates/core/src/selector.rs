//! The on-line batching-policy selector of §5.
//!
//! For workloads whose shapes vary between calls the paper trains a
//! random forest that, given the average M, N, K and the batch size B,
//! predicts which batching heuristic (threshold or binary) will win.
//! Training labels come from running both heuristics; the paper measures
//! on hardware (≈2 h), we measure on the timing simulator (<1 s).

use crate::framework::plan_with_heuristic;
use crate::lowering::lower_plan;
use ctb_batching::BatchingHeuristic;
use ctb_forest::{ForestConfig, RandomForest};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::{GemmBatch, GemmShape};
use ctb_sim::{simulate, LaunchSequence};

/// The two classes the selector distinguishes, in label order.
pub const CLASSES: [BatchingHeuristic; 2] =
    [BatchingHeuristic::Threshold, BatchingHeuristic::Binary];

/// A trained on-line selector.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineSelector {
    forest: RandomForest,
}

/// Simulated execution time of `shapes` under `heuristic` (the labelling
/// oracle, also used by the best-of-both policy).
pub fn simulated_us(
    arch: &ArchSpec,
    thresholds: &Thresholds,
    shapes: &[GemmShape],
    heuristic: BatchingHeuristic,
) -> f64 {
    let (solution, plan) = plan_with_heuristic(shapes, thresholds, heuristic);
    debug_assert!(plan.validate(shapes, &solution).is_ok());
    let kd = lower_plan("label", &plan, shapes);
    simulate(arch, &LaunchSequence::Single(kd)).total_us
}

/// Feature vector of §5: average M, N, K and batch size B.
pub fn features(shapes: &[GemmShape]) -> Vec<f64> {
    let batch = shapes.len().max(1) as f64;
    let m = shapes.iter().map(|s| s.m as f64).sum::<f64>() / batch;
    let n = shapes.iter().map(|s| s.n as f64).sum::<f64>() / batch;
    let k = shapes.iter().map(|s| s.k as f64).sum::<f64>() / batch;
    vec![m, n, k, shapes.len() as f64]
}

impl OnlineSelector {
    /// Train on `cases`, labelling each by the faster heuristic under
    /// the simulator.
    pub fn train(arch: &ArchSpec, thresholds: &Thresholds, cases: &[Vec<GemmShape>]) -> Self {
        assert!(!cases.is_empty(), "need training cases");
        let mut samples = Vec::with_capacity(cases.len());
        let mut labels = Vec::with_capacity(cases.len());
        for shapes in cases {
            let t_threshold = simulated_us(arch, thresholds, shapes, BatchingHeuristic::Threshold);
            let t_binary = simulated_us(arch, thresholds, shapes, BatchingHeuristic::Binary);
            samples.push(features(shapes));
            labels.push(usize::from(t_binary < t_threshold));
        }
        let forest = RandomForest::fit(&samples, &labels, CLASSES.len(), &ForestConfig::default());
        OnlineSelector { forest }
    }

    /// Train on the standard >400-sample corpus (the paper's training
    /// set size) for `arch`.
    pub fn train_default(arch: &ArchSpec, thresholds: &Thresholds) -> Self {
        OnlineSelector::train(arch, thresholds, &ctb_matrix::gen::training_cases(0xC0DE))
    }

    /// Predict the batching heuristic for a batch.
    pub fn select(&self, batch: &GemmBatch) -> BatchingHeuristic {
        self.select_shapes(&batch.shapes)
    }

    /// Predict from shapes alone.
    pub fn select_shapes(&self, shapes: &[GemmShape]) -> BatchingHeuristic {
        CLASSES[self.forest.predict(&features(shapes))]
    }

    /// Fraction of `cases` where the prediction matches the simulated
    /// best.
    pub fn accuracy(
        &self,
        arch: &ArchSpec,
        thresholds: &Thresholds,
        cases: &[Vec<GemmShape>],
    ) -> f64 {
        let correct = cases
            .iter()
            .filter(|shapes| {
                let t_t = simulated_us(arch, thresholds, shapes, BatchingHeuristic::Threshold);
                let t_b = simulated_us(arch, thresholds, shapes, BatchingHeuristic::Binary);
                let best = CLASSES[usize::from(t_b < t_t)];
                self.select_shapes(shapes) == best
            })
            .count();
        correct as f64 / cases.len().max(1) as f64
    }

    /// Borrow the underlying forest (for persistence via
    /// [`ctb_forest::codec`]).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Rebuild from a persisted forest.
    pub fn from_forest(forest: RandomForest) -> Self {
        OnlineSelector { forest }
    }

    /// The selector shipped with this crate: trained offline on the
    /// standard >400-sample corpus against the V100 model (the paper's
    /// one-off per-platform training, persisted so users skip it).
    /// Regenerate with `ctb_forest::codec::encode(selector.forest())`
    /// after retraining.
    pub fn pretrained_v100() -> Self {
        let text = include_str!("../data/selector_v100.forest");
        OnlineSelector::from_forest(
            ctb_forest::codec::decode(text).expect("bundled forest artifact is valid"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::gen;

    fn setup() -> (ArchSpec, Thresholds) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        (arch, th)
    }

    #[test]
    fn features_are_the_paper_quadruple() {
        let shapes = vec![GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64)];
        let f = features(&shapes);
        assert_eq!(f, vec![40.0, 48.0, 96.0, 2.0]);
    }

    #[test]
    fn selector_trains_and_beats_chance_on_training_data() {
        let (arch, th) = setup();
        let cases = gen::random_cases(80, 7);
        let sel = OnlineSelector::train(&arch, &th, &cases);
        let acc = sel.accuracy(&arch, &th, &cases);
        assert!(acc > 0.7, "training accuracy {acc}");
    }

    #[test]
    fn pretrained_artifact_loads_and_agrees_with_fresh_training() {
        let (arch, th) = setup();
        let bundled = OnlineSelector::pretrained_v100();
        let fresh = OnlineSelector::train_default(&arch, &th);
        // The artifact was generated by exactly this training routine;
        // determinism makes them identical.
        assert_eq!(bundled, fresh, "regenerate crates/core/data/selector_v100.forest");
        // And it makes sensible predictions.
        let cases = gen::random_cases(20, 99);
        for shapes in &cases {
            let _ = bundled.select_shapes(shapes);
        }
    }

    #[test]
    fn selector_round_trips_through_codec() {
        let (arch, th) = setup();
        let cases = gen::random_cases(40, 9);
        let sel = OnlineSelector::train(&arch, &th, &cases);
        let text = ctb_forest::codec::encode(sel.forest());
        let back = OnlineSelector::from_forest(ctb_forest::codec::decode(&text).unwrap());
        for shapes in &cases {
            assert_eq!(sel.select_shapes(shapes), back.select_shapes(shapes));
        }
    }
}

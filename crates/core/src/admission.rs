//! Cache-admission gating for the shared plan cache.
//!
//! A 10^6-distinct-shape storm would blow an unbounded exact plan map
//! to millions of entries, most of them one-shot shapes that are never
//! looked up again. Following the Stream-K++ observation that cheap
//! probabilistic membership state beats unbounded exact maps for
//! kernel-selection caches, insertion into a bounded [`PlanShare`]
//! (crate::PlanShare) can be gated by a "seen twice" doorkeeper: a key
//! is admitted only on its *second* sighting, so one-shot shapes never
//! displace resident hot plans.
//!
//! The doorkeeper here is the tagged variant of the classic two-hash
//! Bloom filter gate: instead of setting anonymous bits, each of the
//! two seeded probe positions stores the key's full 64-bit tag. Because
//! the tag mix is a bijection on `u64`, a tag match *is* a key match —
//! the gate never reports a false "seen twice" (the property the
//! admission proptests pin down). Slot eviction when both probe
//! positions are taken only ever causes false *negatives* ("not seen
//! yet"), which is the conservative direction: a hot key may pay one
//! extra miss, but the cache is never polluted by a key that was not
//! genuinely seen before.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How [`crate::PlanShare`] decides whether a freshly planned key may
/// enter the plan cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every planned key is cached (the default; preserves the exact
    /// `misses == distinct signatures` accounting the determinism
    /// suites pin down).
    #[default]
    AdmitAll,
    /// A key is cached only on its second sighting, tracked by a seeded
    /// two-probe [`BloomGate`] with `1 << slots_log2` tag slots.
    SeenTwice { seed: u64, slots_log2: u32 },
}


/// Admission counters exposed through `PlanShare::admission_stats` and
/// `ServeStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Insert attempts the gate let into the cache.
    pub admitted: usize,
    /// Insert attempts the gate turned away (first sightings).
    pub denied: usize,
    /// Doorkeeper tag slots overwritten because both probe positions
    /// were occupied by other keys (each one is a potential future
    /// false negative, never a false positive).
    pub evicted_tags: usize,
}

/// SplitMix64 finalizer — a bijective mix, so distinct inputs always
/// produce distinct tags (zero false positives for `u64` keys). Also
/// used by the plan-cache shard selector to spread FNV hashes (whose
/// low bits cluster for structured keys) across shards.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Seeded two-probe tagged doorkeeper. See the module docs for the
/// guarantee structure. All operations are lock-free; racing observers
/// of *different* keys can at worst lose a recording (a false
/// negative), never fabricate a sighting.
pub struct BloomGate {
    seed: u64,
    mask: u64,
    slots: Vec<AtomicU64>,
    evicted: AtomicUsize,
}

impl BloomGate {
    /// A gate with `1 << slots_log2` tag slots (clamped to `2^1..=2^28`).
    pub fn new(seed: u64, slots_log2: u32) -> Self {
        let log2 = slots_log2.clamp(1, 28);
        let n = 1usize << log2;
        BloomGate {
            seed,
            mask: (n as u64) - 1,
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            evicted: AtomicUsize::new(0),
        }
    }

    /// Tag for `key_hash`: seeded bijective mix, with 0 reserved as the
    /// empty-slot sentinel.
    #[inline]
    fn tag(&self, key_hash: u64) -> u64 {
        let t = mix(self.seed ^ key_hash);
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// Record a sighting of `key_hash`. Returns `true` when the gate
    /// already held this key's tag — i.e. this is (at least) the second
    /// sighting and the key should be admitted.
    pub fn observe(&self, key_hash: u64) -> bool {
        let tag = self.tag(key_hash);
        let ix = mix(tag);
        let i1 = (ix & self.mask) as usize;
        let i2 = ((ix >> 32) & self.mask) as usize;
        let s1 = self.slots[i1].load(Ordering::Relaxed);
        if s1 == tag {
            return true;
        }
        let s2 = self.slots[i2].load(Ordering::Relaxed);
        if s2 == tag {
            return true;
        }
        // First sighting: record the tag, preferring an empty probe
        // position; evict deterministically (by a tag bit) when both
        // are taken.
        if s1 == 0 {
            self.slots[i1].store(tag, Ordering::Relaxed);
        } else if s2 == 0 {
            self.slots[i2].store(tag, Ordering::Relaxed);
        } else {
            let victim = if tag & 1 == 0 { i1 } else { i2 };
            self.slots[victim].store(tag, Ordering::Relaxed);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        false
    }

    /// Whether the gate currently holds `key_hash`'s tag, without
    /// recording a sighting.
    pub fn contains(&self, key_hash: u64) -> bool {
        let tag = self.tag(key_hash);
        let ix = mix(tag);
        let i1 = (ix & self.mask) as usize;
        let i2 = ((ix >> 32) & self.mask) as usize;
        self.slots[i1].load(Ordering::Relaxed) == tag
            || self.slots[i2].load(Ordering::Relaxed) == tag
    }

    /// Number of tag slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Slots overwritten while occupied (future false negatives).
    pub fn evicted_tags(&self) -> usize {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Serialize seed, slot array and eviction counter. The slot array
    /// is written in index order, so save → load → save is
    /// byte-identical.
    pub fn save(&self, w: &mut ctb_savestate::Writer) {
        w.u64(self.seed);
        w.len_prefix(self.slots.len());
        for s in &self.slots {
            w.u64(s.load(Ordering::Relaxed));
        }
        w.u64(self.evicted.load(Ordering::Relaxed) as u64);
    }

    /// Restore state written by [`BloomGate::save`] into this gate. The
    /// blob must describe a gate of the same geometry (seed and slot
    /// count) — anything else is a typed `Mismatch`.
    pub fn load(
        &self,
        r: &mut ctb_savestate::Reader<'_>,
    ) -> Result<(), ctb_savestate::SavestateError> {
        use ctb_savestate::SavestateError;
        let seed = r.u64()?;
        if seed != self.seed {
            return Err(SavestateError::Mismatch(format!(
                "bloom gate seed {seed:#x} does not match configured {:#x}",
                self.seed
            )));
        }
        let slots = r.seq(|r| r.u64())?;
        if slots.len() != self.slots.len() {
            return Err(SavestateError::Mismatch(format!(
                "bloom gate has {} slots, blob has {}",
                self.slots.len(),
                slots.len()
            )));
        }
        for (dst, v) in self.slots.iter().zip(slots) {
            dst.store(v, Ordering::Relaxed);
        }
        self.evicted.store(r.u64()? as usize, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_sighting_is_seen_first_is_not() {
        let g = BloomGate::new(42, 8);
        for key in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            assert!(!g.observe(key), "first sighting of {key:#x} must not be 'seen'");
            assert!(g.observe(key), "second sighting of {key:#x} must be 'seen'");
            assert!(g.contains(key));
        }
    }

    #[test]
    fn distinct_keys_never_alias_to_a_false_seen() {
        // 4 slots with 64 distinct keys: massive slot pressure, lots of
        // tag evictions — but a key never reads as seen before its own
        // second sighting (tags are exact, eviction only forgets).
        let g = BloomGate::new(7, 2);
        for key in 0..64u64 {
            assert!(!g.observe(key), "key {key} falsely reported seen");
        }
        assert!(g.evicted_tags() > 0, "pressure this high must evict");
    }

    #[test]
    fn eviction_causes_false_negatives_not_false_positives() {
        let g = BloomGate::new(3, 1); // 2 slots
        assert!(!g.observe(10));
        // Flood the gate so key 10's tag is (very likely) evicted.
        for key in 100..130u64 {
            g.observe(key);
        }
        // Whatever happened, the *next* observe of 10 answers either
        // "seen" (tag survived — a true positive) or "not seen" (tag
        // evicted — a false negative). Both are allowed; a sighting of
        // a never-observed key claiming "seen" is not.
        assert!(!g.observe(9999), "never-observed key cannot be seen");
    }

    #[test]
    fn seeds_change_the_probe_layout() {
        let a = BloomGate::new(1, 4);
        let b = BloomGate::new(2, 4);
        a.observe(5);
        b.observe(5);
        // Same key, different seeds: both gates hold it...
        assert!(a.contains(5));
        assert!(b.contains(5));
        // ...but the raw slot contents differ (seed enters the tag).
        let dump = |g: &BloomGate| {
            g.slots.iter().map(|s| s.load(Ordering::Relaxed)).collect::<Vec<_>>()
        };
        assert_ne!(dump(&a), dump(&b));
    }

    #[test]
    fn save_load_round_trips_byte_identically() {
        let g = BloomGate::new(99, 6);
        for key in 0..200u64 {
            g.observe(key * 3);
        }
        let mut w = ctb_savestate::Writer::new();
        g.save(&mut w);
        let bytes = w.into_bytes();

        let fresh = BloomGate::new(99, 6);
        let mut r = ctb_savestate::Reader::new(&bytes);
        fresh.load(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(fresh.evicted_tags(), g.evicted_tags());

        let mut w2 = ctb_savestate::Writer::new();
        fresh.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "save→load→save byte-identical");
    }

    #[test]
    fn load_rejects_wrong_geometry_with_typed_mismatch() {
        let g = BloomGate::new(99, 6);
        let mut w = ctb_savestate::Writer::new();
        g.save(&mut w);
        let bytes = w.into_bytes();

        let wrong_seed = BloomGate::new(98, 6);
        let err = wrong_seed.load(&mut ctb_savestate::Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)));

        let wrong_size = BloomGate::new(99, 5);
        let err = wrong_size.load(&mut ctb_savestate::Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)));
    }

    #[test]
    fn slot_log2_is_clamped() {
        assert_eq!(BloomGate::new(0, 0).slot_count(), 2);
        assert_eq!(BloomGate::new(0, 63).slot_count(), 1 << 28);
    }
}

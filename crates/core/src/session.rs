//! Plan-caching execution sessions.
//!
//! The paper's prime deployment scenario is neural-network training:
//! "the batch size and the size of each matrix are fixed", so the
//! expensive part of the framework — tiling selection, batching,
//! best-of-both simulation — needs to run *once* per distinct shape set,
//! after which every training step reuses the plan. [`Session`] provides
//! exactly that: a concurrent plan cache keyed by the batch's shape
//! signature.

use crate::admission::{AdmissionPolicy, AdmissionStats, BloomGate};
use crate::framework::{BatchingPolicy, ExecutionPlan, Framework, RunOutcome};
use crate::hotswap::CalibHandle;
use crate::memo::{fnv1a, SimMemo};
use ctb_matrix::{GemmBatch, GemmShape};
use ctb_obs::{Obs, PointKind, SpanKind};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A plan cache (plus the candidate-simulation memo behind it) that can
/// be shared by several [`Session`]s — the substrate for multi-device
/// deployments where many sessions plan for the *same* architecture and
/// should pay each planning cost once, pool-wide.
///
/// Entries are keyed by `(context fingerprint, shape signature)` where
/// the fingerprint covers the architecture, the thresholds and the
/// batching policy, so sessions with incompatible planning contexts can
/// share one `PlanShare` without ever observing each other's plans.
///
/// The map is split by key hash into independently locked shards so a
/// storm of concurrent lookups from many sessions never serializes on
/// one mutex, and inserts can be gated by a Bloom "seen twice"
/// admission doorkeeper ([`AdmissionPolicy::SeenTwice`]) so one-shot
/// shapes never pollute a capacity-bounded cache. [`PlanShare::new`]
/// keeps the historical behaviour exactly: admit-all, unbounded
/// (sharding alone is behaviour-invisible).
pub struct PlanShare {
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    capacity_per_shard: Option<usize>,
    gate: Option<BloomGate>,
    admitted: AtomicUsize,
    denied: AtomicUsize,
    sim_memo: SimMemo,
    /// Operand residency: which device (and which chiplet on it)
    /// currently holds the warm plan *and* the operand tiles for a
    /// shape signature. Written by cluster placers on every placement
    /// and steal; read by the locality-aware candidate ranking to
    /// waive the interposer penalty for the resident device. Keyed by
    /// [`shape_sig_hash`] — deliberately fingerprint-free, because
    /// residency is a property of the bytes on the device, not of the
    /// planning context.
    residency: Mutex<HashMap<u64, OperandHome>>,
    /// Hot-swappable calibration state consulted by
    /// [`BatchingPolicy::Swappable`] sessions and by predictors that
    /// correct analytical-model estimates. Runtime-only: never
    /// serialized — [`PlanShare::save`]/[`PlanShare::restore_with_sessions`]
    /// rebuild shares at calibration version 0 and the operator
    /// re-installs a profile afterwards.
    calib: CalibHandle,
}

/// Construction-time layout + admission configuration for [`PlanShare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanShareConfig {
    /// Independently locked shards (rounded up to a power of two,
    /// minimum 1).
    pub shards: usize,
    /// Per-shard entry bound; `None` (default) is unbounded. A full
    /// shard evicts its oldest entry (FIFO) to make room for an
    /// admitted insert.
    pub capacity_per_shard: Option<usize>,
    /// Insert gating policy; [`AdmissionPolicy::AdmitAll`] by default.
    pub admission: AdmissionPolicy,
}

impl Default for PlanShareConfig {
    fn default() -> Self {
        PlanShareConfig {
            shards: 16,
            capacity_per_shard: None,
            admission: AdmissionPolicy::AdmitAll,
        }
    }
}

/// One lock's worth of the plan cache.
#[derive(Default)]
struct Shard {
    map: PlanMap,
    /// Insertion order, maintained only under a capacity bound (FIFO
    /// eviction); empty when the share is unbounded.
    fifo: VecDeque<PlanKey>,
}

/// `(context fingerprint, shape signature)`.
type PlanKey = (u64, Vec<GemmShape>);
type PlanMap = HashMap<PlanKey, Arc<ExecutionPlan>>;

/// Where a shape signature's operands currently live: a device in the
/// pool and the home chiplet the device's topology assigns them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandHome {
    /// Pool index of the holding device.
    pub device: usize,
    /// Home chiplet on that device (always 0 on monolithic parts).
    pub chiplet: u32,
}

/// Stable hash of a shape signature, used as the residency key and as
/// the input to [`ChipletTopology::home_chiplet`](ctb_gpu_specs::ChipletTopology::home_chiplet).
/// FNV-1a over every `(m, n, k)` with a full-avalanche finalizer, so it
/// is identical across engines, processes, and savestate restores.
pub fn shape_sig_hash(shapes: &[GemmShape]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325;
    for s in shapes {
        h = fnv1a(h, &(s.m as u64).to_le_bytes());
        h = fnv1a(h, &(s.n as u64).to_le_bytes());
        h = fnv1a(h, &(s.k as u64).to_le_bytes());
    }
    crate::admission::mix(h)
}

/// Hash of a plan-cache key, used for shard selection and as the Bloom
/// doorkeeper key. FNV-1a over the fingerprint and every shape, so it
/// is stable across processes (savestate replay lands keys in the same
/// shards).
fn plan_key_hash(fp: u64, shapes: &[GemmShape]) -> u64 {
    let mut h = fnv1a(0xCBF2_9CE4_8422_2325, &fp.to_le_bytes());
    for s in shapes {
        h = fnv1a(h, &(s.m as u64).to_le_bytes());
        h = fnv1a(h, &(s.n as u64).to_le_bytes());
        h = fnv1a(h, &(s.k as u64).to_le_bytes());
    }
    // FNV-1a's low bits cluster for structured inputs (power-of-two
    // shape dims); the shard index is taken from the low bits, so
    // finalize with a full-avalanche mix.
    crate::admission::mix(h)
}

/// Total operand footprint of a shape signature in bytes: for each
/// GEMM, the f32 A (m×k), B (k×n) and C (m×n) tiles. This is the
/// footprint the locality model splits into local and remote shares
/// when the operands are not already resident on the placing device.
pub fn operand_bytes(shapes: &[GemmShape]) -> u64 {
    shapes
        .iter()
        .map(|s| {
            let (m, n, k) = (s.m as u64, s.n as u64, s.k as u64);
            4 * (m * k + k * n + m * n)
        })
        .sum()
}

impl Default for PlanShare {
    fn default() -> Self {
        PlanShare::with_config(PlanShareConfig::default())
    }
}

impl PlanShare {
    pub fn new() -> Self {
        PlanShare::default()
    }

    /// A share with an explicit shard/capacity/admission configuration.
    pub fn with_config(cfg: PlanShareConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        let gate = match cfg.admission {
            AdmissionPolicy::AdmitAll => None,
            AdmissionPolicy::SeenTwice { seed, slots_log2 } => {
                Some(BloomGate::new(seed, slots_log2))
            }
        };
        PlanShare {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_mask: (shards as u64) - 1,
            capacity_per_shard: cfg.capacity_per_shard,
            gate,
            admitted: AtomicUsize::new(0),
            denied: AtomicUsize::new(0),
            sim_memo: SimMemo::default(),
            residency: Mutex::new(HashMap::new()),
            calib: CalibHandle::new(),
        }
    }

    /// Record that `sig`'s operands now live at `home` (placement or a
    /// successful steal moved them there). Last writer wins — exactly
    /// the semantics of the bytes on the device.
    pub fn note_residency(&self, sig: u64, home: OperandHome) {
        self.residency.lock().insert(sig, home);
    }

    /// Where `sig`'s operands currently live, if anywhere.
    pub fn residency_of(&self, sig: u64) -> Option<OperandHome> {
        self.residency.lock().get(&sig).copied()
    }

    /// Roll back a residency move: restore `sig`'s previous home, or
    /// forget the signature entirely when it had none. Placement engines
    /// claim residency *before* a queue push (so a racing re-route sees
    /// the landing) and call this when the push is refused.
    pub fn restore_residency(&self, sig: u64, prev: Option<OperandHome>) {
        let mut map = self.residency.lock();
        match prev {
            Some(home) => {
                map.insert(sig, home);
            }
            None => {
                map.remove(&sig);
            }
        }
    }

    /// Number of shape signatures with a recorded operand home.
    pub fn residency_len(&self) -> usize {
        self.residency.lock().len()
    }

    /// The hot-swap calibration handle shared by every attached session
    /// (see [`crate::hotswap`] for the ownership rules).
    pub fn calib(&self) -> &CalibHandle {
        &self.calib
    }

    /// The candidate-simulation memo shared by every attached session.
    /// The memo key already covers architecture and thresholds, so
    /// heterogeneous sessions share it safely.
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim_memo
    }

    /// Total cached plans across every planning context in the share.
    pub fn cached_plans_total(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Number of independently locked shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry count per shard, in shard-index order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().map.len()).collect()
    }

    /// The per-shard entry bound (`None` = unbounded).
    pub fn capacity_per_shard(&self) -> Option<usize> {
        self.capacity_per_shard
    }

    /// Admission-gate counters. All zero under
    /// [`AdmissionPolicy::AdmitAll`] (no gate decisions are taken).
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            evicted_tags: self.gate.as_ref().map_or(0, |g| g.evicted_tags()),
        }
    }

    /// The shard responsible for `key_hash`.
    fn shard_for(&self, key_hash: u64) -> &Mutex<Shard> {
        &self.shards[(key_hash & self.shard_mask) as usize]
    }

    /// Consult the admission gate for an insert of `key_hash`. Counts
    /// the decision. Always `true` without a gate.
    fn admit(&self, key_hash: u64) -> bool {
        match &self.gate {
            None => true,
            Some(g) => {
                if g.observe(key_hash) {
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    self.denied.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Serialize the share: the simulation memo (entries + counters),
    /// every plan-cache key (sorted), then the shard layout and
    /// admission-gate state. Plan *bodies* are not serialized —
    /// `ExecutionPlan` is a pure deterministic function of the planning
    /// context and the shapes, and with the memo restored first a
    /// re-plan replays every candidate simulation from the memo,
    /// rebuilding bit-identical plans for free. Keys-only blobs stay
    /// small and can never smuggle a stale plan past a code change.
    pub fn save(&self, w: &mut ctb_savestate::Writer) {
        self.sim_memo.save(w);
        // Lock every shard for a consistent snapshot; keys are written
        // globally sorted so save → restore → save is byte-identical
        // regardless of shard layout or map iteration order.
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut keys: Vec<&PlanKey> = guards.iter().flat_map(|g| g.map.keys()).collect();
        keys.sort_by_key(|(fp, shapes)| {
            (*fp, shapes.iter().map(|s| (s.m, s.n, s.k)).collect::<Vec<_>>())
        });
        w.len_prefix(keys.len());
        for (fp, shapes) in keys {
            w.u64(*fp);
            w.len_prefix(shapes.len());
            for s in shapes {
                w.u64(s.m as u64);
                w.u64(s.n as u64);
                w.u64(s.k as u64);
            }
        }
        drop(guards);
        // v2 section: layout + admission state.
        w.u64(self.shards.len() as u64);
        match self.capacity_per_shard {
            None => w.u8(0),
            Some(cap) => {
                w.u8(1);
                w.u64(cap as u64);
            }
        }
        match &self.gate {
            None => w.u8(0),
            Some(g) => {
                w.u8(1);
                g.save(w);
            }
        }
        w.u64(self.admitted.load(Ordering::Relaxed) as u64);
        w.u64(self.denied.load(Ordering::Relaxed) as u64);
        // v3 section: operand residency, sig-sorted for byte stability.
        let residency = self.residency.lock();
        let mut homes: Vec<(u64, OperandHome)> =
            residency.iter().map(|(sig, home)| (*sig, *home)).collect();
        drop(residency);
        homes.sort_by_key(|(sig, _)| *sig);
        w.len_prefix(homes.len());
        for (sig, home) in homes {
            w.u64(sig);
            w.u64(home.device as u64);
            w.u64(u64::from(home.chiplet));
        }
    }

    /// Restore a blob written by [`PlanShare::save`] into this share.
    /// `sessions` must be attached to *this* share and must cover every
    /// planning fingerprint in the blob — each saved key is re-planned
    /// through its matching session (all candidate simulations hit the
    /// just-restored memo), then the memo counters are pinned back to
    /// the checkpointed values so the rebuild leaves no accounting
    /// trace. Replayed inserts bypass the admission gate (the key *was*
    /// cached at checkpoint time; the gate's own state is restored from
    /// the blob afterwards). The caller owns the sessions' own
    /// counters: re-planning counts as misses on them (and emits obs
    /// events when a bus is attached), so restore session stats / obs
    /// state *after* this.
    ///
    /// The blob's shard count, capacity bound and gate geometry must
    /// match this share's configuration — a capacity-bounded replay
    /// into a different layout could evict differently than the donor
    /// ever did. A fingerprint with no matching session — e.g. a
    /// `Forest`-policy session, whose fingerprint is noncified
    /// precisely because its selector state is not reproducible — is a
    /// typed [`Mismatch`](ctb_savestate::SavestateError::Mismatch).
    pub fn restore_with_sessions(
        &self,
        r: &mut ctb_savestate::Reader<'_>,
        sessions: &[&Session],
    ) -> Result<(), ctb_savestate::SavestateError> {
        use ctb_savestate::SavestateError;
        for s in sessions {
            if !std::ptr::eq(Arc::as_ptr(&s.share), self) {
                return Err(SavestateError::Mismatch(
                    "restore_with_sessions: session not attached to this share".into(),
                ));
            }
        }
        self.sim_memo.load(r)?;
        let (memo_hits, memo_misses) = (self.sim_memo.hits(), self.sim_memo.misses());
        let keys = r.seq(|r| {
            let fp = r.u64()?;
            let shapes = r.seq(|r| {
                let (m, n, k) = (r.u64()?, r.u64()?, r.u64()?);
                Ok(GemmShape::new(m as usize, n as usize, k as usize))
            })?;
            Ok((fp, shapes))
        })?;
        for (fp, shapes) in keys {
            let session = sessions.iter().find(|s| s.fp == fp).ok_or_else(|| {
                SavestateError::Mismatch(format!(
                    "no session matches planning fingerprint {fp:#018x} \
                     (unshareable context, e.g. a Forest-policy session?)"
                ))
            })?;
            session.plan_inner(&shapes, true).map_err(|e| {
                SavestateError::Mismatch(format!("re-planning saved key failed: {e}"))
            })?;
        }
        // Undo the rebuild's accounting pollution (replans hit the memo).
        self.sim_memo.set_counters(memo_hits, memo_misses);
        // v2 section: layout + admission state.
        let shard_count = r.u64()? as usize;
        if shard_count != self.shards.len() {
            return Err(SavestateError::Mismatch(format!(
                "share has {} shards, blob has {shard_count}",
                self.shards.len()
            )));
        }
        let capacity = match r.u8()? {
            0 => None,
            _ => Some(r.u64()? as usize),
        };
        if capacity != self.capacity_per_shard {
            return Err(SavestateError::Mismatch(format!(
                "share capacity {:?} does not match blob {capacity:?}",
                self.capacity_per_shard
            )));
        }
        match (r.u8()?, &self.gate) {
            (0, None) => {}
            (1, Some(g)) => g.load(r)?,
            (flag, _) => {
                return Err(SavestateError::Mismatch(format!(
                    "blob gate flag {flag} does not match configured admission policy"
                )));
            }
        }
        self.admitted.store(r.u64()? as usize, Ordering::Relaxed);
        self.denied.store(r.u64()? as usize, Ordering::Relaxed);
        // v3 section: operand residency.
        let homes = r.seq(|r| {
            let sig = r.u64()?;
            let device = r.u64()? as usize;
            let chiplet = r.u64()? as u32;
            Ok((sig, OperandHome { device, chiplet }))
        })?;
        let mut residency = self.residency.lock();
        residency.clear();
        residency.extend(homes);
        Ok(())
    }
}

/// Serial tag handed to each `Forest`-policy session: the on-line
/// selector is stateful, so two forest sessions may legitimately pick
/// different plans for the same shapes and must never share entries.
static FOREST_NONCE: AtomicU64 = AtomicU64::new(1);

/// Fingerprint of a framework's planning context: architecture name,
/// thresholds, and batching policy. Two sessions whose frameworks agree
/// on all three produce identical plans for identical shapes and may
/// answer each other's lookups.
fn planning_fingerprint(framework: &Framework) -> u64 {
    let arch = framework.arch();
    let t = framework.thresholds();
    let mut h = fnv1a(0xCBF2_9CE4_8422_2325, arch.name.as_bytes());
    h = fnv1a(h, &t.tlp_threshold.to_le_bytes());
    h = fnv1a(h, &t.theta.to_le_bytes());
    match &framework.config().batching {
        BatchingPolicy::Fixed(heuristic) => {
            h = fnv1a(h, &[1, *heuristic as u8]);
        }
        BatchingPolicy::BestOfBoth => {
            h = fnv1a(h, &[2]);
        }
        BatchingPolicy::Forest(_) => {
            // Unique per session: opt stateful selectors out of sharing.
            h = fnv1a(h, &[3]);
            h = fnv1a(h, &FOREST_NONCE.fetch_add(1, Ordering::Relaxed).to_le_bytes());
        }
        BatchingPolicy::Swappable => {
            // Shareable *within* a calibration epoch: sessions on the
            // same share read the same CalibHandle, so at any given
            // version they resolve the same selector and may answer
            // each other's lookups. The epoch itself is mixed into the
            // per-lookup key (not this base fingerprint) by
            // `Session::plan_inner`; only version-0 keys are eligible
            // for savestate restore — the event engine refuses to
            // checkpoint mid-calibration for exactly this reason.
            h = fnv1a(h, &[4]);
        }
    }
    h
}

/// A long-lived execution session with a plan cache.
///
/// ```
/// use ctb_core::{Framework, Session};
/// use ctb_gpu_specs::ArchSpec;
/// use ctb_matrix::{GemmBatch, GemmShape};
///
/// let session = Session::new(Framework::new(ArchSpec::volta_v100()));
/// let shapes = vec![GemmShape::new(32, 32, 32); 4];
/// for step in 0..3 {
///     let batch = GemmBatch::random(&shapes, 1.0, 0.0, step);
///     session.run(&batch).unwrap();
/// }
/// assert_eq!(session.stats().misses, 1); // planned once, reused twice
/// ```
pub struct Session {
    framework: Framework,
    /// Plan cache + candidate-simulation memo. Private by default
    /// ([`Session::new`]); multi-session deployments hand the same
    /// share to every session ([`Session::with_share`]) so planning
    /// costs are paid once per context, pool-wide, and re-planning
    /// (after [`Session::clear`], or when concurrent first-callers
    /// race) never re-runs a simulation the share has seen.
    share: Arc<PlanShare>,
    /// This session's planning-context fingerprint within the share.
    fp: u64,
    stats: Mutex<CacheStats>,
    /// Planning attempts that returned an error (never cached).
    plan_failures: AtomicUsize,
    /// Observability bus; `None` (the default) makes every
    /// instrumentation site a single pointer-null check.
    obs: Option<Arc<Obs>>,
}

impl Session {
    pub fn new(framework: Framework) -> Self {
        Session::with_share(framework, Arc::new(PlanShare::new()))
    }

    /// A session whose plan cache and simulation memo live in `share`.
    /// Sessions with identical planning contexts (architecture,
    /// thresholds, batching policy) answer each other's lookups;
    /// sessions with different contexts coexist without collisions.
    pub fn with_share(framework: Framework, share: Arc<PlanShare>) -> Self {
        let fp = planning_fingerprint(&framework);
        Session {
            framework,
            share,
            fp,
            stats: Mutex::new(CacheStats::default()),
            plan_failures: AtomicUsize::new(0),
            obs: None,
        }
    }

    /// Attach an observability bus: planning emits `Plan` spans with
    /// nested `Autotune` spans on the cold path, plus cache hit/miss
    /// point events at exactly the sites the [`CacheStats`] counters
    /// increment (so a trace audit reconciles `==` against
    /// [`Session::stats`]).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability bus, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// The share backing this session's caches.
    pub fn share(&self) -> &Arc<PlanShare> {
        &self.share
    }

    /// The plan for `shapes`, computed on first use and cached.
    pub fn plan(&self, shapes: &[GemmShape]) -> Result<Arc<ExecutionPlan>, String> {
        self.plan_inner(shapes, false)
    }

    /// Lookup-or-plan with an optional admission-gate bypass
    /// (`force_admit`), used by savestate replay: a key that *was*
    /// cached at checkpoint time must land back in the cache regardless
    /// of what the (not-yet-restored) gate would say.
    pub(crate) fn plan_inner(
        &self,
        shapes: &[GemmShape],
        force_admit: bool,
    ) -> Result<Arc<ExecutionPlan>, String> {
        // Span covers the whole lookup-or-plan; the guard's drop emits
        // the end even on the early returns.
        let _plan_span = self.obs.as_deref().map(|o| o.span(SpanKind::Plan));
        // Swappable sessions resolve their planning context through the
        // share's calibration handle. One snapshot covers the whole
        // decision (key derivation *and* selector consultation), so a
        // concurrent profile install can never produce a plan cached
        // under one epoch but chosen by another.
        let calib = matches!(self.framework.config().batching, BatchingPolicy::Swappable)
            .then(|| self.share.calib.snapshot());
        let fp = match &calib {
            // Mix the epoch into the key so version N entries never
            // answer version N+1 lookups (the retrained selector may
            // legitimately choose a different plan). Version 0 keeps
            // the base fingerprint: pristine Swappable sessions stay
            // bit-compatible with their savestate-restorable keys.
            Some(c) if c.version > 0 => {
                crate::admission::mix(self.fp ^ c.version.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            }
            _ => self.fp,
        };
        let key = (fp, shapes.to_vec());
        let key_hash = plan_key_hash(fp, shapes);
        let shard = self.share.shard_for(key_hash);
        if let Some(plan) = shard.lock().map.get(&key) {
            self.stats.lock().hits += 1;
            if let Some(o) = self.obs.as_deref() {
                o.point(PointKind::PlanCacheHit);
            }
            return Ok(Arc::clone(plan));
        }
        // Plan outside the lock: planning simulates candidate schemes
        // and can take a while; concurrent first-callers may race and
        // plan twice, but the result is deterministic so either wins.
        // Only the insert that actually populates the cache counts as a
        // miss — a racer that loses is answered from the winner's entry
        // and counts as a hit, so summed misses == distinct cached keys
        // holds even under first-caller races and shared caches (an
        // admission-denied planning event still counts as a miss: the
        // plan was computed, not served from the cache).
        let plan = {
            // The cold path is the paper's expensive phase: candidate
            // tiling enumeration + batching coordination + simulation.
            let _autotune = self.obs.as_deref().map(|o| o.span(SpanKind::Autotune));
            let heuristic_override =
                calib.as_ref().and_then(|c| c.selector.as_deref()).map(|s| s.select_shapes(shapes));
            match self.framework.plan_memoized_with(shapes, &self.share.sim_memo, heuristic_override)
            {
                Ok(plan) => Arc::new(plan),
                Err(m) => {
                    self.plan_failures.fetch_add(1, Ordering::Relaxed);
                    return Err(m);
                }
            }
        };
        let mut guard = shard.lock();
        let sh = &mut *guard;
        match sh.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.stats.lock().hits += 1;
                if let Some(o) = self.obs.as_deref() {
                    o.point(PointKind::PlanCacheHit);
                }
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.stats.lock().misses += 1;
                if let Some(o) = self.obs.as_deref() {
                    o.point(PointKind::PlanCacheMiss);
                }
                // The gate decision runs under the shard lock, so all
                // sightings of a given key are serialized ("seen
                // twice" can never be fabricated by a same-key race).
                if force_admit || self.share.admit(key_hash) {
                    let fifo_key = self.share.capacity_per_shard.map(|_| v.key().clone());
                    let plan = Arc::clone(v.insert(plan));
                    if let Some(cap) = self.share.capacity_per_shard {
                        sh.fifo.push_back(fifo_key.expect("computed above"));
                        while sh.map.len() > cap {
                            let oldest = sh.fifo.pop_front().expect("fifo tracks map");
                            sh.map.remove(&oldest);
                        }
                    }
                    Ok(plan)
                } else {
                    // First sighting under SeenTwice: the plan is
                    // served but not cached.
                    if let Some(o) = self.obs.as_deref() {
                        o.point(PointKind::PlanCacheDenied);
                    }
                    Ok(plan)
                }
            }
        }
    }

    /// Execute a batch through the cached plan (planning it on first
    /// sight of its shape signature).
    pub fn run(&self, batch: &GemmBatch) -> Result<RunOutcome, String> {
        batch.validate()?;
        let plan = self.plan(&batch.shapes)?;
        let (results, report) = {
            let _exec = self.obs.as_deref().map(|o| o.span(SpanKind::Exec));
            self.framework.execute(batch, &plan)
        };
        Ok(RunOutcome { results, report, plan: (*plan).clone() })
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Candidate-simulation memo statistics (hits answered from the
    /// cache vs simulator pipelines actually run while planning).
    /// Share-wide when the session was built with [`Session::with_share`].
    pub fn sim_stats(&self) -> CacheStats {
        CacheStats { hits: self.share.sim_memo.hits(), misses: self.share.sim_memo.misses() }
    }

    /// The candidate-simulation memo shared by every planning event —
    /// exposed so embedders (the serving layer, monitoring) can inspect
    /// its size and accounting directly.
    pub fn sim_memo(&self) -> &SimMemo {
        &self.share.sim_memo
    }

    /// Number of distinct shape signatures cached for *this* session's
    /// planning context (other contexts in a shared [`PlanShare`] are
    /// not counted).
    pub fn cached_plans(&self) -> usize {
        self.share
            .shards
            .iter()
            .map(|s| s.lock().map.keys().filter(|(fp, _)| *fp == self.fp).count())
            .sum()
    }

    /// Planning attempts that returned an error. Failed plans are never
    /// cached, so repeated attempts on a bad shape set keep counting —
    /// embedders (the serving layer's degraded mode) watch this to
    /// distinguish "cold cache" from "planner rejecting traffic".
    pub fn plan_failures(&self) -> usize {
        self.plan_failures.load(Ordering::Relaxed)
    }

    /// Drop every cached plan for this session's planning context (e.g.
    /// after retuning thresholds). Other contexts sharing the same
    /// [`PlanShare`] keep their entries.
    pub fn clear(&self) {
        for shard in &self.share.shards {
            let mut guard = shard.lock();
            guard.map.retain(|(fp, _), _| *fp != self.fp);
            guard.fifo.retain(|(fp, _)| *fp != self.fp);
        }
    }

    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// This session's planning-context fingerprint within its share —
    /// the key half a savestate stores next to each cached plan's
    /// shape signature.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Force the cache counters (savestate restore: the rebuild in
    /// [`PlanShare::restore_with_sessions`] counts its re-plans here,
    /// so the engine pins the checkpointed values back afterwards).
    pub fn set_stats(&self, stats: CacheStats) {
        *self.stats.lock() = stats;
    }

    /// Force the failed-planning counter (savestate restore).
    pub fn set_plan_failures(&self, n: usize) {
        self.plan_failures.store(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_gpu_specs::ArchSpec;
    use ctb_matrix::assert_all_close;

    fn session() -> Session {
        Session::new(Framework::new(ArchSpec::volta_v100()))
    }

    fn shapes() -> Vec<GemmShape> {
        vec![GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)]
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let s = session();
        for step in 0..5u64 {
            let batch = GemmBatch::random(&shapes(), 1.0, 0.0, step);
            let out = s.run(&batch).expect("runs");
            assert_all_close(&batch.reference_result(), &out.results, 2e-4);
        }
        let stats = s.stats();
        assert_eq!(stats.misses, 1, "one planning event");
        assert_eq!(stats.hits, 4);
        assert_eq!(s.cached_plans(), 1);
    }

    #[test]
    fn distinct_shape_sets_get_distinct_plans() {
        let s = session();
        s.plan(&shapes()).unwrap();
        s.plan(&[GemmShape::new(128, 128, 64)]).unwrap();
        assert_eq!(s.cached_plans(), 2);
        // Same shapes in a different order are a different signature
        // (tile enumeration is order-dependent).
        let mut rev = shapes();
        rev.reverse();
        s.plan(&rev).unwrap();
        assert_eq!(s.cached_plans(), 3);
    }

    #[test]
    fn clear_resets_the_cache() {
        let s = session();
        s.plan(&shapes()).unwrap();
        s.clear();
        assert_eq!(s.cached_plans(), 0);
        s.plan(&shapes()).unwrap();
        assert_eq!(s.stats().misses, 2);
    }

    #[test]
    fn replanning_after_clear_hits_the_simulation_memo() {
        let s = session();
        let first = s.plan(&shapes()).unwrap();
        let after_first = s.sim_stats();
        assert!(after_first.misses > 0, "best-of-both must simulate candidates");

        // Dropping the plan cache must not force the simulations to be
        // redone: the second planning event is answered from the memo.
        s.clear();
        let second = s.plan(&shapes()).unwrap();
        let after_second = s.sim_stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "no new simulator runs on re-planning"
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(first.plan, second.plan, "memoized re-plan picks the identical plan");
        assert_eq!(first.heuristic, second.heuristic);
    }

    #[test]
    fn failed_plans_are_counted_and_never_cached() {
        let s = session();
        assert_eq!(s.plan_failures(), 0);
        for _ in 0..3 {
            assert!(s.plan(&[]).is_err(), "empty batch cannot be planned");
        }
        assert_eq!(s.plan_failures(), 3, "every failed attempt counts");
        assert_eq!(s.cached_plans(), 0, "failures are not cached");
        s.plan(&shapes()).expect("good shapes still plan");
        assert_eq!(s.plan_failures(), 3, "successes leave the counter alone");
    }

    #[test]
    fn same_context_sessions_share_plans() {
        let share = Arc::new(PlanShare::new());
        let a = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        let b = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        let pa = a.plan(&shapes()).unwrap();
        let before = a.sim_stats();
        let pb = b.plan(&shapes()).unwrap();
        assert!(Arc::ptr_eq(&pa, &pb), "identical contexts share the entry");
        assert_eq!(b.stats(), CacheStats { hits: 1, misses: 0 }, "b never plans");
        assert_eq!(b.sim_stats().misses, before.misses, "no new simulator runs for b");
        assert_eq!(share.cached_plans_total(), 1);
        assert_eq!(a.cached_plans(), 1);
        assert_eq!(b.cached_plans(), 1);
    }

    #[test]
    fn distinct_archs_never_collide_in_a_share() {
        let share = Arc::new(PlanShare::new());
        let v100 = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        let m60 = Session::with_share(Framework::new(ArchSpec::maxwell_m60()), Arc::clone(&share));
        let pv = v100.plan(&shapes()).unwrap();
        let pm = m60.plan(&shapes()).unwrap();
        assert!(!Arc::ptr_eq(&pv, &pm), "different archs plan separately");
        assert_eq!(m60.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(share.cached_plans_total(), 2);
        assert_eq!(v100.cached_plans(), 1, "each context sees only its own entries");

        // Clearing one context leaves the other's plans untouched.
        v100.clear();
        assert_eq!(v100.cached_plans(), 0);
        assert_eq!(m60.cached_plans(), 1);
        assert_eq!(share.cached_plans_total(), 1);
    }

    #[test]
    fn forest_policy_sessions_opt_out_of_sharing() {
        use crate::framework::{BatchingPolicy, FrameworkConfig};
        use crate::selector::OnlineSelector;
        let share = Arc::new(PlanShare::new());
        let arch = ArchSpec::volta_v100();
        let thresholds = ctb_gpu_specs::Thresholds::paper_v100();
        let cases = vec![vec![GemmShape::new(32, 32, 32)], vec![GemmShape::new(16, 16, 256)]];
        let forest = || {
            let cfg = FrameworkConfig {
                batching: BatchingPolicy::Forest(OnlineSelector::train(
                    &arch,
                    &thresholds,
                    &cases,
                )),
                thresholds: None,
            };
            Session::with_share(Framework::with_config(arch.clone(), cfg), Arc::clone(&share))
        };
        let (a, b) = (forest(), forest());
        a.plan(&shapes()).unwrap();
        b.plan(&shapes()).unwrap();
        assert_eq!(b.stats().misses, 1, "stateful selectors never share entries");
        assert_eq!(share.cached_plans_total(), 2);
    }

    #[test]
    fn plan_share_save_restore_rebuilds_identical_plans_without_new_simulations() {
        let share = Arc::new(PlanShare::new());
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        let original = s.plan(&shapes()).unwrap();
        s.plan(&[GemmShape::new(128, 128, 64)]).unwrap();
        let mut w = ctb_savestate::Writer::new();
        share.save(&mut w);
        let bytes = w.into_bytes();

        let share2 = Arc::new(PlanShare::new());
        let r2 = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share2));
        let mut rd = ctb_savestate::Reader::new(&bytes);
        share2.restore_with_sessions(&mut rd, &[&r2]).unwrap();
        rd.expect_end().unwrap();

        assert_eq!(share2.cached_plans_total(), 2);
        // Memo accounting is pinned back to the checkpoint, so the
        // rebuild is invisible: no new simulator runs, no new hits.
        assert_eq!(share2.sim_memo().misses(), share.sim_memo().misses());
        assert_eq!(share2.sim_memo().hits(), share.sim_memo().hits());
        // A lookup of a restored key is a hit producing the identical plan.
        r2.set_stats(CacheStats::default());
        let rebuilt = r2.plan(&shapes()).unwrap();
        assert_eq!(r2.stats(), CacheStats { hits: 1, misses: 0 });
        assert_eq!(original.plan, rebuilt.plan, "re-planned plan is identical");
        assert_eq!(original.heuristic, rebuilt.heuristic);
        // save(restored) == save(original): keys are written sorted.
        let mut w2 = ctb_savestate::Writer::new();
        share2.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn plan_share_restore_rejects_unknown_fingerprints_with_typed_mismatch() {
        let share = Arc::new(PlanShare::new());
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        s.plan(&shapes()).unwrap();
        let mut w = ctb_savestate::Writer::new();
        share.save(&mut w);
        let bytes = w.into_bytes();

        // Restoring with a session for a *different* arch: no session
        // matches the saved fingerprint.
        let share2 = Arc::new(PlanShare::new());
        let wrong = Session::with_share(Framework::new(ArchSpec::maxwell_m60()), Arc::clone(&share2));
        let err = share2
            .restore_with_sessions(&mut ctb_savestate::Reader::new(&bytes), &[&wrong])
            .unwrap_err();
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)));

        // A session attached to some other share is rejected outright.
        let stray = Session::new(Framework::new(ArchSpec::volta_v100()));
        let err = share2
            .restore_with_sessions(&mut ctb_savestate::Reader::new(&bytes), &[&stray])
            .unwrap_err();
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)));
    }

    #[test]
    fn seen_twice_admission_caches_only_on_second_sighting() {
        let share = Arc::new(PlanShare::with_config(PlanShareConfig {
            admission: AdmissionPolicy::SeenTwice { seed: 7, slots_log2: 10 },
            ..PlanShareConfig::default()
        }));
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));

        // First sighting: planned and served, but not cached.
        s.plan(&shapes()).unwrap();
        assert_eq!(share.cached_plans_total(), 0, "first sighting is not cached");
        assert_eq!(share.admission_stats().denied, 1);
        assert_eq!(s.stats(), CacheStats { hits: 0, misses: 1 }, "a planning event is a miss");

        // Second sighting: admitted.
        s.plan(&shapes()).unwrap();
        assert_eq!(share.cached_plans_total(), 1);
        assert_eq!(share.admission_stats(), AdmissionStats { admitted: 1, denied: 1, evicted_tags: 0 });
        assert_eq!(s.stats(), CacheStats { hits: 0, misses: 2 });

        // Third sighting: a plain cache hit, no new gate decision.
        s.plan(&shapes()).unwrap();
        assert_eq!(s.stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(share.admission_stats(), AdmissionStats { admitted: 1, denied: 1, evicted_tags: 0 });
    }

    #[test]
    fn capacity_bound_evicts_oldest_entry_fifo() {
        let share = Arc::new(PlanShare::with_config(PlanShareConfig {
            shards: 1,
            capacity_per_shard: Some(2),
            admission: AdmissionPolicy::AdmitAll,
        }));
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        let sig = |m: usize| vec![GemmShape::new(m, 32, 32)];
        s.plan(&sig(16)).unwrap();
        s.plan(&sig(32)).unwrap();
        assert_eq!(share.cached_plans_total(), 2);
        s.plan(&sig(48)).unwrap();
        assert_eq!(share.cached_plans_total(), 2, "bound holds");
        // The oldest signature (16) was evicted: looking it up again is
        // a fresh miss; 32 and 48 are still resident hits.
        s.set_stats(CacheStats::default());
        s.plan(&sig(32)).unwrap();
        s.plan(&sig(48)).unwrap();
        assert_eq!(s.stats(), CacheStats { hits: 2, misses: 0 });
        s.plan(&sig(16)).unwrap();
        assert_eq!(s.stats(), CacheStats { hits: 2, misses: 1 }, "evicted key re-misses");
    }

    #[test]
    fn sharding_distributes_entries_and_preserves_totals() {
        let share = Arc::new(PlanShare::with_config(PlanShareConfig {
            shards: 8,
            ..PlanShareConfig::default()
        }));
        assert_eq!(share.shard_count(), 8);
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        for m in 1..=12usize {
            s.plan(&[GemmShape::new(m * 8, 32, 32)]).unwrap();
        }
        let sizes = share.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert_eq!(share.cached_plans_total(), 12);
        assert_eq!(s.cached_plans(), 12);
        assert!(sizes.iter().filter(|&&n| n > 0).count() > 1, "keys spread across shards");
        // Shard counts are rounded up to a power of two.
        assert_eq!(PlanShare::with_config(PlanShareConfig { shards: 5, ..Default::default() }).shard_count(), 8);
        assert_eq!(PlanShare::with_config(PlanShareConfig { shards: 0, ..Default::default() }).shard_count(), 1);
    }

    #[test]
    fn configured_share_save_restore_round_trips_gate_state() {
        let cfg = PlanShareConfig {
            shards: 4,
            capacity_per_shard: Some(8),
            admission: AdmissionPolicy::SeenTwice { seed: 11, slots_log2: 8 },
        };
        let share = Arc::new(PlanShare::with_config(cfg));
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        // Two sightings of one signature (cached), one of another
        // (denied, gate remembers it).
        s.plan(&shapes()).unwrap();
        s.plan(&shapes()).unwrap();
        s.plan(&[GemmShape::new(128, 128, 64)]).unwrap();
        let mut w = ctb_savestate::Writer::new();
        share.save(&mut w);
        let bytes = w.into_bytes();

        let share2 = Arc::new(PlanShare::with_config(cfg));
        let r2 = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share2));
        let mut rd = ctb_savestate::Reader::new(&bytes);
        share2.restore_with_sessions(&mut rd, &[&r2]).unwrap();
        rd.expect_end().unwrap();

        assert_eq!(share2.cached_plans_total(), 1, "replay bypasses the gate for cached keys");
        assert_eq!(share2.admission_stats(), share.admission_stats(), "counters pinned back");
        // Byte-identity: save(restored) == save(original), before any
        // further traffic mutates the restored share.
        let mut w2 = ctb_savestate::Writer::new();
        share2.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // The gate remembered the denied key: its next sighting admits.
        r2.plan(&[GemmShape::new(128, 128, 64)]).unwrap();
        assert_eq!(share2.cached_plans_total(), 2, "restored gate state carries first sightings");
    }

    #[test]
    fn restore_rejects_mismatched_share_layout() {
        let share = Arc::new(PlanShare::with_config(PlanShareConfig {
            shards: 4,
            ..PlanShareConfig::default()
        }));
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        s.plan(&shapes()).unwrap();
        let mut w = ctb_savestate::Writer::new();
        share.save(&mut w);
        let bytes = w.into_bytes();

        let check = |cfg: PlanShareConfig| {
            let share2 = Arc::new(PlanShare::with_config(cfg));
            let r2 =
                Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share2));
            share2
                .restore_with_sessions(&mut ctb_savestate::Reader::new(&bytes), &[&r2])
                .unwrap_err()
        };
        let err = check(PlanShareConfig { shards: 8, ..PlanShareConfig::default() });
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)), "shard count pinned");
        let err = check(PlanShareConfig {
            shards: 4,
            capacity_per_shard: Some(2),
            ..PlanShareConfig::default()
        });
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)), "capacity pinned");
        let err = check(PlanShareConfig {
            shards: 4,
            capacity_per_shard: None,
            admission: AdmissionPolicy::SeenTwice { seed: 1, slots_log2: 4 },
        });
        assert!(matches!(err, ctb_savestate::SavestateError::Mismatch(_)), "gate presence pinned");
    }

    #[test]
    fn residency_tracks_last_writer_and_round_trips_through_savestate() {
        let share = Arc::new(PlanShare::new());
        let s = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share));
        s.plan(&shapes()).unwrap();
        let sig = shape_sig_hash(&shapes());
        assert_eq!(share.residency_of(sig), None, "planning alone does not place operands");
        share.note_residency(sig, OperandHome { device: 2, chiplet: 1 });
        assert_eq!(share.residency_of(sig), Some(OperandHome { device: 2, chiplet: 1 }));
        // A steal moves the operands: last writer wins.
        share.note_residency(sig, OperandHome { device: 0, chiplet: 3 });
        assert_eq!(share.residency_of(sig), Some(OperandHome { device: 0, chiplet: 3 }));
        share.note_residency(0xDEAD, OperandHome { device: 1, chiplet: 0 });
        assert_eq!(share.residency_len(), 2);

        let mut w = ctb_savestate::Writer::new();
        share.save(&mut w);
        let bytes = w.into_bytes();
        let share2 = Arc::new(PlanShare::new());
        let r2 = Session::with_share(Framework::new(ArchSpec::volta_v100()), Arc::clone(&share2));
        let mut rd = ctb_savestate::Reader::new(&bytes);
        share2.restore_with_sessions(&mut rd, &[&r2]).unwrap();
        rd.expect_end().unwrap();
        assert_eq!(share2.residency_len(), 2);
        assert_eq!(share2.residency_of(sig), Some(OperandHome { device: 0, chiplet: 3 }));
        assert_eq!(share2.residency_of(0xDEAD), Some(OperandHome { device: 1, chiplet: 0 }));
        // Byte stability: save(restored) == save(original).
        let mut w2 = ctb_savestate::Writer::new();
        share2.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn shape_sig_hash_is_order_sensitive_and_stable() {
        let sig = shape_sig_hash(&shapes());
        assert_eq!(sig, shape_sig_hash(&shapes()), "deterministic");
        let mut rev = shapes();
        rev.reverse();
        assert_ne!(sig, shape_sig_hash(&rev), "order is part of the signature");
        // Golden footprint: 48·96 + 96·64 + 48·64 + 16·128 + 128·32 + 16·32
        // f32 elements = 4·(4608+6144+3072+2048+4096+512) bytes.
        assert_eq!(operand_bytes(&shapes()), 4 * (4608 + 6144 + 3072 + 2048 + 4096 + 512));
        assert_eq!(operand_bytes(&[]), 0);
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let s = std::sync::Arc::new(session());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let batch = GemmBatch::random(&shapes(), 1.0, 0.0, t);
                let out = s.run(&batch).expect("runs");
                assert_all_close(&batch.reference_result(), &out.results, 2e-4);
            }));
        }
        for h in handles {
            h.join().expect("thread ok");
        }
        assert_eq!(s.cached_plans(), 1);
    }
}

//! Plan-caching execution sessions.
//!
//! The paper's prime deployment scenario is neural-network training:
//! "the batch size and the size of each matrix are fixed", so the
//! expensive part of the framework — tiling selection, batching,
//! best-of-both simulation — needs to run *once* per distinct shape set,
//! after which every training step reuses the plan. [`Session`] provides
//! exactly that: a concurrent plan cache keyed by the batch's shape
//! signature.

use crate::framework::{ExecutionPlan, Framework, RunOutcome};
use crate::memo::SimMemo;
use ctb_matrix::{GemmBatch, GemmShape};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A long-lived execution session with a plan cache.
///
/// ```
/// use ctb_core::{Framework, Session};
/// use ctb_gpu_specs::ArchSpec;
/// use ctb_matrix::{GemmBatch, GemmShape};
///
/// let session = Session::new(Framework::new(ArchSpec::volta_v100()));
/// let shapes = vec![GemmShape::new(32, 32, 32); 4];
/// for step in 0..3 {
///     let batch = GemmBatch::random(&shapes, 1.0, 0.0, step);
///     session.run(&batch).unwrap();
/// }
/// assert_eq!(session.stats().misses, 1); // planned once, reused twice
/// ```
pub struct Session {
    framework: Framework,
    cache: Mutex<HashMap<Vec<GemmShape>, Arc<ExecutionPlan>>>,
    stats: Mutex<CacheStats>,
    /// Candidate-simulation memo shared by every planning event, so
    /// re-planning (after [`Session::clear`], or when concurrent
    /// first-callers race) never re-runs a simulation it has seen.
    sim_memo: SimMemo,
    /// Planning attempts that returned an error (never cached).
    plan_failures: AtomicUsize,
}

impl Session {
    pub fn new(framework: Framework) -> Self {
        Session {
            framework,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            sim_memo: SimMemo::new(),
            plan_failures: AtomicUsize::new(0),
        }
    }

    /// The plan for `shapes`, computed on first use and cached.
    pub fn plan(&self, shapes: &[GemmShape]) -> Result<Arc<ExecutionPlan>, String> {
        if let Some(plan) = self.cache.lock().get(shapes) {
            self.stats.lock().hits += 1;
            return Ok(Arc::clone(plan));
        }
        // Plan outside the lock: planning simulates candidate schemes
        // and can take a while; concurrent first-callers may race and
        // plan twice, but the result is deterministic so either wins.
        // Only the insert that actually populates the cache counts as a
        // miss — a racer that loses is answered from the winner's entry
        // and counts as a hit, so `misses == cached_plans()` holds even
        // under first-caller races.
        let plan = match self.framework.plan_memoized(shapes, &self.sim_memo) {
            Ok(plan) => Arc::new(plan),
            Err(m) => {
                self.plan_failures.fetch_add(1, Ordering::Relaxed);
                return Err(m);
            }
        };
        let mut cache = self.cache.lock();
        match cache.entry(shapes.to_vec()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.stats.lock().hits += 1;
                Ok(Arc::clone(e.get()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.stats.lock().misses += 1;
                Ok(Arc::clone(v.insert(plan)))
            }
        }
    }

    /// Execute a batch through the cached plan (planning it on first
    /// sight of its shape signature).
    pub fn run(&self, batch: &GemmBatch) -> Result<RunOutcome, String> {
        batch.validate()?;
        let plan = self.plan(&batch.shapes)?;
        let (results, report) = self.framework.execute(batch, &plan);
        Ok(RunOutcome { results, report, plan: (*plan).clone() })
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Candidate-simulation memo statistics (hits answered from the
    /// cache vs simulator pipelines actually run while planning).
    pub fn sim_stats(&self) -> CacheStats {
        CacheStats { hits: self.sim_memo.hits(), misses: self.sim_memo.misses() }
    }

    /// The candidate-simulation memo shared by every planning event —
    /// exposed so embedders (the serving layer, monitoring) can inspect
    /// its size and accounting directly.
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim_memo
    }

    /// Number of distinct shape signatures cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// Planning attempts that returned an error. Failed plans are never
    /// cached, so repeated attempts on a bad shape set keep counting —
    /// embedders (the serving layer's degraded mode) watch this to
    /// distinguish "cold cache" from "planner rejecting traffic".
    pub fn plan_failures(&self) -> usize {
        self.plan_failures.load(Ordering::Relaxed)
    }

    /// Drop every cached plan (e.g. after retuning thresholds).
    pub fn clear(&self) {
        self.cache.lock().clear();
    }

    pub fn framework(&self) -> &Framework {
        &self.framework
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_gpu_specs::ArchSpec;
    use ctb_matrix::assert_all_close;

    fn session() -> Session {
        Session::new(Framework::new(ArchSpec::volta_v100()))
    }

    fn shapes() -> Vec<GemmShape> {
        vec![GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)]
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let s = session();
        for step in 0..5u64 {
            let batch = GemmBatch::random(&shapes(), 1.0, 0.0, step);
            let out = s.run(&batch).expect("runs");
            assert_all_close(&batch.reference_result(), &out.results, 2e-4);
        }
        let stats = s.stats();
        assert_eq!(stats.misses, 1, "one planning event");
        assert_eq!(stats.hits, 4);
        assert_eq!(s.cached_plans(), 1);
    }

    #[test]
    fn distinct_shape_sets_get_distinct_plans() {
        let s = session();
        s.plan(&shapes()).unwrap();
        s.plan(&[GemmShape::new(128, 128, 64)]).unwrap();
        assert_eq!(s.cached_plans(), 2);
        // Same shapes in a different order are a different signature
        // (tile enumeration is order-dependent).
        let mut rev = shapes();
        rev.reverse();
        s.plan(&rev).unwrap();
        assert_eq!(s.cached_plans(), 3);
    }

    #[test]
    fn clear_resets_the_cache() {
        let s = session();
        s.plan(&shapes()).unwrap();
        s.clear();
        assert_eq!(s.cached_plans(), 0);
        s.plan(&shapes()).unwrap();
        assert_eq!(s.stats().misses, 2);
    }

    #[test]
    fn replanning_after_clear_hits_the_simulation_memo() {
        let s = session();
        let first = s.plan(&shapes()).unwrap();
        let after_first = s.sim_stats();
        assert!(after_first.misses > 0, "best-of-both must simulate candidates");

        // Dropping the plan cache must not force the simulations to be
        // redone: the second planning event is answered from the memo.
        s.clear();
        let second = s.plan(&shapes()).unwrap();
        let after_second = s.sim_stats();
        assert_eq!(
            after_second.misses, after_first.misses,
            "no new simulator runs on re-planning"
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(first.plan, second.plan, "memoized re-plan picks the identical plan");
        assert_eq!(first.heuristic, second.heuristic);
    }

    #[test]
    fn failed_plans_are_counted_and_never_cached() {
        let s = session();
        assert_eq!(s.plan_failures(), 0);
        for _ in 0..3 {
            assert!(s.plan(&[]).is_err(), "empty batch cannot be planned");
        }
        assert_eq!(s.plan_failures(), 3, "every failed attempt counts");
        assert_eq!(s.cached_plans(), 0, "failures are not cached");
        s.plan(&shapes()).expect("good shapes still plan");
        assert_eq!(s.plan_failures(), 3, "successes leave the counter alone");
    }

    #[test]
    fn sessions_are_shareable_across_threads() {
        let s = std::sync::Arc::new(session());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let batch = GemmBatch::random(&shapes(), 1.0, 0.0, t);
                let out = s.run(&batch).expect("runs");
                assert_all_close(&batch.reference_result(), &out.results, 2e-4);
            }));
        }
        for h in handles {
            h.join().expect("thread ok");
        }
        assert_eq!(s.cached_plans(), 1);
    }
}

//! Split-K execution — an extension beyond the paper.
//!
//! The paper's batching engine improves ILP when K is *small* by giving
//! a block several tiles. The dual problem — K is *large* but M·N (and
//! hence the tile count) is tiny — leaves the device TLP-starved no
//! matter how tiles are batched: a 64×64×8192 GEMM has one `large` tile.
//! The classic remedy (as in CUTLASS's `splitK` mode, cited by the paper
//! as related work) is to split each tile's K range across several
//! blocks that produce partial sums, then reduce.
//!
//! This module implements split-K on top of the same tiling engine and
//! cost model: a main kernel whose blocks each compute one K-slice of
//! one tile into a workspace, followed by a reduction kernel that
//! combines the partials and applies `alpha`/`beta`. Functionally it is
//! verified against the reference GEMM like every other execution path.

use crate::lowering::{active_threads_for, tile_pass};
use ctb_batching::{tiles_for, TileTask};
use ctb_gpu_specs::{ArchSpec, BlockFootprint, Thresholds};
use ctb_matrix::{GemmBatch, GemmShape, MatF32};
use ctb_sim::{simulate, BlockWork, KernelDesc, LaunchSequence, SimReport, TilePass};
use ctb_tiling::{select_tiling, TilingSolution};

/// One K-slice of one tile: the unit of work of a split-K block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitTile {
    pub tile: TileTask,
    /// Slice index within the tile's split.
    pub slice: usize,
    /// K range `[k0, k1)` this slice accumulates.
    pub k0: usize,
    pub k1: usize,
}

/// A planned split-K execution.
#[derive(Debug, Clone)]
pub struct SplitKPlan {
    pub solution: TilingSolution,
    pub split: usize,
    pub slices: Vec<SplitTile>,
    /// Main kernel (partial products) + reduction kernel.
    pub sequence: LaunchSequence,
}

/// Split every tile's K range into `split` nearly equal slices
/// (BK-aligned so each slice runs whole main-loop iterations).
pub fn split_tiles(tiles: &[TileTask], split: usize) -> Vec<SplitTile> {
    assert!(split >= 1, "split must be at least 1");
    let mut out = Vec::with_capacity(tiles.len() * split);
    for &tile in tiles {
        if tile.k == 0 {
            // K = 0 degenerates to a single beta-scaling slice.
            out.push(SplitTile { tile, slice: 0, k0: 0, k1: 0 });
            continue;
        }
        let bk = tile.strategy.bk;
        // Distribute whole BK chunks across slices; empty slices are
        // dropped (tiny K).
        let per_slice = tile.k.div_ceil(bk).div_ceil(split).max(1);
        let mut k0 = 0usize;
        let mut slice = 0usize;
        while k0 < tile.k {
            let k1 = (k0 + per_slice * bk).min(tile.k);
            out.push(SplitTile { tile, slice, k0, k1 });
            k0 = k1;
            slice += 1;
        }
    }
    out
}

/// Pick a split factor: grow while the plan stays TLP-starved (below
/// half the tiling threshold), capped so each slice keeps at least four
/// main-loop iterations and by `max_split`.
pub fn auto_split(
    shapes: &[GemmShape],
    solution: &TilingSolution,
    thresholds: &Thresholds,
    max_split: usize,
) -> usize {
    let tiles: usize = shapes
        .iter()
        .zip(&solution.per_gemm)
        .map(|(s, st)| st.tiles(s.m, s.n))
        .sum();
    let min_k = shapes.iter().map(|s| s.k).min().unwrap_or(0);
    let bk = solution.per_gemm.first().map(|st| st.bk).unwrap_or(8);
    let mut split = 1usize;
    while split < max_split
        && (tiles * split * 2) as u64 * solution.thread_count.threads() as u64
            <= thresholds.tlp_threshold
        && min_k / (split * 2) >= 4 * bk
    {
        split *= 2;
    }
    split
}

/// Build the split-K plan for `shapes` with an explicit `split`.
pub fn plan_splitk(
    arch: &ArchSpec,
    shapes: &[GemmShape],
    thresholds: &Thresholds,
    split: usize,
) -> Result<SplitKPlan, String> {
    if shapes.is_empty() {
        return Err("empty batch".into());
    }
    let _ = arch;
    let solution = select_tiling(shapes, thresholds);
    let tiles = tiles_for(shapes, &solution);
    let slices = split_tiles(&tiles, split);

    // Main kernel: one block per slice.
    let mut regs = 16u32;
    let mut smem = 0u32;
    for st in &solution.per_gemm {
        regs = regs.max(st.regs_per_thread());
        smem = smem.max(st.smem_bytes());
    }
    let threads = solution.thread_count.threads();
    let main_blocks: Vec<BlockWork> = slices
        .iter()
        .map(|s| {
            let mut pass = tile_pass(&s.tile.strategy, s.k1 - s.k0);
            // Partials are written unreduced; same store volume.
            pass.iterations = ((s.k1 - s.k0).div_ceil(s.tile.strategy.bk)).max(1) as u32;
            BlockWork {
                active_threads: active_threads_for(&s.tile, threads, shapes),
                passes: vec![pass],
            }
        })
        .collect();
    let main = KernelDesc::new(
        format!("splitk_main_x{split}"),
        BlockFootprint::new(threads, regs, smem),
        main_blocks,
    );

    // Reduction kernel: one block per tile, each thread summing its
    // sub-tile across `split` partials and applying alpha/beta.
    let reduction_blocks: Vec<BlockWork> = tiles
        .iter()
        .map(|t| {
            let elems_per_thread =
                (t.strategy.by * t.strategy.bx) as f64 / threads as f64;
            let pass = TilePass {
                iterations: split.max(1) as u32,
                fma_per_thread: elems_per_thread,
                ld_shared_per_thread: 0.0,
                // One 4-float load per 4 elements per partial.
                ld_global_per_thread: elems_per_thread / 4.0,
                aux_per_thread: 2.0,
                epilogue_stores: (elems_per_thread / 4.0).max(1.0),
            };
            BlockWork {
                active_threads: active_threads_for(t, threads, shapes),
                passes: vec![pass],
            }
        })
        .collect();
    let reduction = KernelDesc::new(
        "splitk_reduce",
        BlockFootprint::new(threads, 24, 0),
        reduction_blocks,
    );

    let sequence = if split <= 1 {
        LaunchSequence::Single(main)
    } else {
        LaunchSequence::Serial(vec![main, reduction])
    };
    Ok(SplitKPlan { solution, split, slices, sequence })
}

/// Functionally execute a split-K plan: partial products per slice,
/// reduction, then `C = alpha·Σ + beta·C₀`.
pub fn execute_splitk(batch: &GemmBatch, plan: &SplitKPlan) -> Vec<MatF32> {
    use rayon::prelude::*;

    // Partial products, one per slice (workspace).
    struct Partial {
        gemm: usize,
        y0: usize,
        x0: usize,
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    }
    let partials: Vec<Partial> = plan
        .slices
        .par_iter()
        .map(|s| {
            let shape = batch.shapes[s.tile.gemm];
            let (a, b) = (&batch.a[s.tile.gemm], &batch.b[s.tile.gemm]);
            let st = &s.tile.strategy;
            let y0 = s.tile.y * st.by;
            let x0 = s.tile.x * st.bx;
            let rows = (shape.m - y0).min(st.by);
            let cols = (shape.n - x0).min(st.bx);
            let mut acc = vec![0.0f32; rows * cols];
            for p in s.k0..s.k1 {
                for i in 0..rows {
                    let av = a.get(y0 + i, p);
                    let brow = &b.as_slice()[p * shape.n + x0..p * shape.n + x0 + cols];
                    let dst = &mut acc[i * cols..(i + 1) * cols];
                    for (d, &bv) in dst.iter_mut().zip(brow) {
                        *d += av * bv;
                    }
                }
            }
            Partial { gemm: s.tile.gemm, y0, x0, rows, cols, data: acc }
        })
        .collect();

    // Reduction: sum the partials of each tile, then alpha/beta.
    let mut out: Vec<MatF32> = batch
        .c
        .iter()
        .map(|c| {
            let mut m = c.clone();
            for v in m.as_mut_slice() {
                *v *= batch.beta;
            }
            m
        })
        .collect();
    for p in partials {
        let n = out[p.gemm].cols();
        let buf = out[p.gemm].as_mut_slice();
        for i in 0..p.rows {
            let dst = &mut buf[(p.y0 + i) * n + p.x0..(p.y0 + i) * n + p.x0 + p.cols];
            for (d, &v) in dst.iter_mut().zip(&p.data[i * p.cols..(i + 1) * p.cols]) {
                *d += batch.alpha * v;
            }
        }
    }
    out
}

/// Plan, execute and time a split-K run.
pub fn run_splitk(
    arch: &ArchSpec,
    batch: &GemmBatch,
    split: usize,
) -> Result<(Vec<MatF32>, SimReport), String> {
    batch.validate()?;
    let thresholds = Thresholds::for_arch(arch);
    let plan = plan_splitk(arch, &batch.shapes, &thresholds, split)?;
    let results = execute_splitk(batch, &plan);
    let report = simulate(arch, &plan.sequence);
    Ok((results, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::assert_all_close;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    #[test]
    fn split_tiles_cover_k_exactly() {
        let tiles = tiles_for(
            &[GemmShape::new(64, 64, 100)],
            &select_tiling(&[GemmShape::new(64, 64, 100)], &Thresholds::paper_v100()),
        );
        for split in [1usize, 2, 3, 8] {
            let slices = split_tiles(&tiles, split);
            // Per tile: slices are contiguous, disjoint, and cover [0, K).
            for t in &tiles {
                let mut mine: Vec<&SplitTile> = slices
                    .iter()
                    .filter(|s| s.tile == *t)
                    .collect();
                mine.sort_by_key(|s| s.k0);
                assert_eq!(mine.first().unwrap().k0, 0);
                assert_eq!(mine.last().unwrap().k1, t.k);
                for w in mine.windows(2) {
                    assert_eq!(w[0].k1, w[1].k0, "slices must tile K");
                }
                assert!(mine.len() <= split);
            }
        }
    }

    #[test]
    fn functional_results_match_reference_for_all_splits() {
        let shapes = vec![GemmShape::new(48, 40, 200), GemmShape::new(17, 65, 33)];
        let batch = GemmBatch::random(&shapes, 0.75, -0.5, 21);
        let expected = batch.reference_result();
        for split in [1usize, 2, 4, 7] {
            let (results, report) = run_splitk(&v100(), &batch, split).expect("runs");
            assert_all_close(&expected, &results, 5e-4);
            assert!(report.total_us > 0.0);
        }
    }

    #[test]
    fn splitk_helps_tlp_starved_large_k_gemms() {
        // One 64x64x8192 GEMM: a single `large` tile. Split-K by 8
        // spreads the K loop over 8 blocks and must beat split 1 in the
        // simulator.
        let arch = v100();
        let shapes = vec![GemmShape::new(64, 64, 8192)];
        let th = Thresholds::for_arch(&arch);
        let t1 = simulate(&arch, &plan_splitk(&arch, &shapes, &th, 1).unwrap().sequence).total_us;
        let t8 = simulate(&arch, &plan_splitk(&arch, &shapes, &th, 8).unwrap().sequence).total_us;
        assert!(t8 < t1, "split 8 ({t8}) should beat split 1 ({t1})");
    }

    #[test]
    fn auto_split_grows_only_when_starved() {
        let arch = v100();
        let th = Thresholds::for_arch(&arch);
        // TLP-starved, huge K: split should exceed 1.
        let starved = vec![GemmShape::new(64, 64, 8192)];
        let sol = select_tiling(&starved, &th);
        assert!(auto_split(&starved, &sol, &th, 16) > 1);
        // Plenty of tiles: no split.
        let wide = vec![GemmShape::new(1024, 1024, 64); 8];
        let sol = select_tiling(&wide, &th);
        assert_eq!(auto_split(&wide, &sol, &th, 16), 1);
        // Small K: splitting would starve the main loop; no split.
        let small_k = vec![GemmShape::new(64, 64, 32)];
        let sol = select_tiling(&small_k, &th);
        assert_eq!(auto_split(&small_k, &sol, &th, 16), 1);
    }

    #[test]
    fn k_zero_degenerates_to_beta_scaling() {
        let shapes = vec![GemmShape::new(16, 16, 0)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, 3);
        let (results, _) = run_splitk(&v100(), &batch, 4).expect("runs");
        assert_all_close(&batch.reference_result(), &results, 1e-6);
    }
}

//! The user-facing framework API (Fig 4): plan, execute, run.

use crate::interface::execute_plan;
use crate::lowering::lower_plan;
use crate::memo::SimMemo;
use crate::selector::{simulated_us, OnlineSelector};
use ctb_batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::{GemmBatch, GemmShape, MatF32};
use ctb_sim::{simulate, KernelDesc, LaunchSequence, SimReport};
use ctb_tiling::{select_tiling, TilingSolution};

/// How the batching engine chooses between its heuristics (§5).
#[derive(Debug, Clone)]
pub enum BatchingPolicy {
    /// Always use one heuristic.
    Fixed(BatchingHeuristic),
    /// Plan with both heuristics, simulate both, keep the faster — the
    /// paper's recommendation when shapes are fixed across calls (e.g.
    /// training a fixed network).
    BestOfBoth,
    /// The random-forest on-line selector — the paper's recommendation
    /// when shapes vary between calls.
    Forest(OnlineSelector),
    /// Hot-swappable selector: the session consults its share's
    /// [`CalibHandle`](crate::CalibHandle) per plan and passes the
    /// selector's choice in as a heuristic override. With no profile
    /// installed (or when `Framework::plan` is called standalone,
    /// outside a session) this behaves exactly like
    /// [`BestOfBoth`](BatchingPolicy::BestOfBoth).
    Swappable,
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    pub batching: BatchingPolicy,
    /// Override the architecture-derived thresholds (TLP threshold, θ).
    pub thresholds: Option<Thresholds>,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig { batching: BatchingPolicy::BestOfBoth, thresholds: None }
    }
}

/// A fully planned batched-GEMM execution.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Tiling engine output: strategy per GEMM, unified thread count.
    pub solution: TilingSolution,
    /// Heuristic the batching engine ended up using.
    pub heuristic: BatchingHeuristic,
    /// The five auxiliary arrays of §6.
    pub plan: BatchPlan,
    /// Lowered single-kernel description for the simulator.
    pub kernel: KernelDesc,
}

/// Results of running a batch through the framework.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The computed C matrices, one per GEMM.
    pub results: Vec<MatF32>,
    /// Simulated timing (single coordinated kernel + launch overhead).
    pub report: SimReport,
    /// The plan that produced them.
    pub plan: ExecutionPlan,
}

/// Plan tiling + batching for `shapes` with a fixed heuristic.
/// (Shared with the selector's labelling oracle.)
pub fn plan_with_heuristic(
    shapes: &[GemmShape],
    thresholds: &Thresholds,
    heuristic: BatchingHeuristic,
) -> (TilingSolution, BatchPlan) {
    let solution = select_tiling(shapes, thresholds);
    let tiles = tiles_for(shapes, &solution);
    let blocks = assign_blocks(&tiles, heuristic, thresholds, solution.thread_count.threads());
    let plan = BatchPlan::from_blocks(&blocks, solution.thread_count.threads());
    (solution, plan)
}

/// The coordinated tiling + batching framework bound to one device.
///
/// ```
/// use ctb_core::Framework;
/// use ctb_gpu_specs::ArchSpec;
/// use ctb_matrix::{GemmBatch, GemmShape};
///
/// let framework = Framework::new(ArchSpec::volta_v100());
/// let shapes = vec![GemmShape::new(64, 64, 64), GemmShape::new(16, 32, 128)];
/// let batch = GemmBatch::random(&shapes, 1.0, 0.0, 42);
/// let outcome = framework.run(&batch).unwrap();
/// assert_eq!(outcome.results.len(), 2);
/// assert!(outcome.report.total_us > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Framework {
    arch: ArchSpec,
    thresholds: Thresholds,
    config: FrameworkConfig,
}

impl Framework {
    /// Framework for `arch` with default configuration (best-of-both
    /// batching, architecture-derived thresholds).
    pub fn new(arch: ArchSpec) -> Self {
        let thresholds = Thresholds::for_arch(&arch);
        Framework { arch, thresholds, config: FrameworkConfig::default() }
    }

    /// Framework with an explicit configuration.
    pub fn with_config(arch: ArchSpec, config: FrameworkConfig) -> Self {
        let thresholds = config.thresholds.unwrap_or_else(|| Thresholds::for_arch(&arch));
        Framework { arch, thresholds, config }
    }

    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The configuration this framework was built with (batching
    /// policy + threshold overrides) — exposed so embedders can
    /// fingerprint compatible planning contexts.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// Phase 1 + 2: produce the execution plan for a batch of shapes.
    pub fn plan(&self, shapes: &[GemmShape]) -> Result<ExecutionPlan, String> {
        self.plan_inner(shapes, None, None)
    }

    /// [`Framework::plan`] with a simulation memo: best-of-both
    /// candidate simulations already seen by `memo` are answered from
    /// the cache. The chosen plan is identical to `plan`'s — a hit
    /// replays the exact time the uncached pipeline produced.
    pub fn plan_memoized(
        &self,
        shapes: &[GemmShape],
        memo: &SimMemo,
    ) -> Result<ExecutionPlan, String> {
        self.plan_inner(shapes, Some(memo), None)
    }

    /// [`Framework::plan_memoized`] with an optional heuristic override
    /// for the [`BatchingPolicy::Swappable`] policy — the hot-swap seam
    /// through which a session injects its calibration handle's current
    /// selector choice. Ignored under every other policy (those remain
    /// fully determined by the framework's own configuration).
    pub fn plan_memoized_with(
        &self,
        shapes: &[GemmShape],
        memo: &SimMemo,
        heuristic_override: Option<BatchingHeuristic>,
    ) -> Result<ExecutionPlan, String> {
        self.plan_inner(shapes, Some(memo), heuristic_override)
    }

    fn plan_inner(
        &self,
        shapes: &[GemmShape],
        memo: Option<&SimMemo>,
        heuristic_override: Option<BatchingHeuristic>,
    ) -> Result<ExecutionPlan, String> {
        if shapes.is_empty() {
            return Err("empty batch".into());
        }
        if shapes.iter().any(|s| s.m == 0 || s.n == 0) {
            return Err("GEMM with empty output matrix".into());
        }
        let candidate_us = |h: BatchingHeuristic| match memo {
            Some(memo) => {
                let (solution, _) = plan_with_heuristic(shapes, &self.thresholds, h);
                memo.simulate_solution(&self.arch, shapes, &solution, h, &self.thresholds)
            }
            None => simulated_us(&self.arch, &self.thresholds, shapes, h),
        };
        // Try both heuristics (§5) plus the degenerate
        // one-tile-per-block scheme (what threshold batching
        // produces with no TLP headroom), keeping the fastest.
        let best_of_both = || {
            [
                BatchingHeuristic::Threshold,
                BatchingHeuristic::Binary,
                BatchingHeuristic::OneTilePerBlock,
            ]
            .into_iter()
            .min_by(|&x, &y| candidate_us(x).total_cmp(&candidate_us(y)))
            .expect("non-empty candidate list")
        };
        let heuristic = match &self.config.batching {
            BatchingPolicy::Fixed(h) => *h,
            BatchingPolicy::Forest(selector) => selector.select_shapes(shapes),
            BatchingPolicy::BestOfBoth => best_of_both(),
            BatchingPolicy::Swappable => heuristic_override.unwrap_or_else(best_of_both),
        };
        let (solution, plan) = plan_with_heuristic(shapes, &self.thresholds, heuristic);
        plan.validate(shapes, &solution)?;
        let kernel = lower_plan("coordinated_batched_gemm", &plan, shapes);
        Ok(ExecutionPlan { solution, heuristic, plan, kernel })
    }

    /// Execute a plan: functional results + simulated timing.
    pub fn execute(&self, batch: &GemmBatch, plan: &ExecutionPlan) -> (Vec<MatF32>, SimReport) {
        let results = execute_plan(batch, &plan.plan);
        let report = simulate(&self.arch, &LaunchSequence::Single(plan.kernel.clone()));
        (results, report)
    }

    /// Plan and execute in one call.
    pub fn run(&self, batch: &GemmBatch) -> Result<RunOutcome, String> {
        batch.validate()?;
        let plan = self.plan(&batch.shapes)?;
        let (results, report) = self.execute(batch, &plan);
        Ok(RunOutcome { results, report, plan })
    }

    /// Simulated time only (used by benches; skips the functional pass).
    pub fn simulate_only(&self, shapes: &[GemmShape]) -> Result<SimReport, String> {
        let plan = self.plan(shapes)?;
        Ok(simulate(&self.arch, &LaunchSequence::Single(plan.kernel)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_matrix::assert_all_close;

    fn shapes() -> Vec<GemmShape> {
        vec![
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ]
    }

    #[test]
    fn run_produces_reference_results() {
        let fw = Framework::new(ArchSpec::volta_v100());
        let batch = GemmBatch::random(&shapes(), 1.0, 0.25, 5);
        let out = fw.run(&batch).expect("runs");
        assert_all_close(&batch.reference_result(), &out.results, 2e-4);
        assert!(out.report.total_us > 0.0);
        assert_eq!(out.report.kernels.len(), 1, "single coordinated kernel");
    }

    #[test]
    fn fixed_policy_is_respected() {
        for h in [BatchingHeuristic::Threshold, BatchingHeuristic::Binary] {
            let fw = Framework::with_config(
                ArchSpec::volta_v100(),
                FrameworkConfig { batching: BatchingPolicy::Fixed(h), thresholds: None },
            );
            let plan = fw.plan(&shapes()).unwrap();
            assert_eq!(plan.heuristic, h);
        }
    }

    #[test]
    fn best_of_both_is_at_least_as_good_as_either() {
        let arch = ArchSpec::volta_v100();
        let fw = Framework::new(arch.clone());
        let th = *fw.thresholds();
        let s = shapes();
        let best = fw.simulate_only(&s).unwrap().total_us;
        let t = simulated_us(&arch, &th, &s, BatchingHeuristic::Threshold);
        let b = simulated_us(&arch, &th, &s, BatchingHeuristic::Binary);
        assert!(best <= t.min(b) + 1e-9, "best {best} vs threshold {t} / binary {b}");
    }

    #[test]
    fn empty_and_degenerate_batches_error() {
        let fw = Framework::new(ArchSpec::volta_v100());
        assert!(fw.plan(&[]).is_err());
        assert!(fw.plan(&[GemmShape::new(0, 4, 4)]).is_err());
    }

    #[test]
    fn k_zero_is_beta_scaling_only() {
        // K = 0 degenerates to C *= beta; the framework must not crash
        // and must produce beta-scaled C.
        let fw = Framework::new(ArchSpec::volta_v100());
        let batch = GemmBatch::random(&[GemmShape::new(32, 32, 0)], 1.0, 0.5, 3);
        let out = fw.run(&batch).expect("runs");
        assert_all_close(&batch.reference_result(), &out.results, 1e-6);
    }

    #[test]
    fn plan_is_deterministic() {
        let fw = Framework::new(ArchSpec::volta_v100());
        let a = fw.plan(&shapes()).unwrap();
        let b = fw.plan(&shapes()).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.heuristic, b.heuristic);
    }
}

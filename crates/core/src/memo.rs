//! Memoized candidate-plan simulation.
//!
//! The autotuner and the best-of-both planner both evaluate many
//! candidate `(tiling solution, batching heuristic)` pairs through the
//! full `tiles_for → assign_blocks → lower_plan → simulate` pipeline.
//! That pipeline is deterministic: the simulated time of a candidate is
//! a pure function of the architecture, the thresholds, the batch
//! shapes, the per-GEMM strategy ids (plus the unified thread count)
//! and the heuristic. [`SimMemo`] caches simulated times under exactly
//! that key, so revisited candidates — coordinate descent re-proposing
//! a strategy, clamped uniform passes that collapse to the same
//! assignment, the final heuristic comparison re-simulating a uniform
//! winner — cost a hash lookup instead of a simulator run.
//!
//! Memoization never changes a computed time: a hit returns the exact
//! `f64` the uncached pipeline produced when the key was first seen.

use crate::lowering::lower_plan;
use ctb_batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_sim::{simulate, LaunchSequence};
use ctb_tiling::TilingSolution;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identity of one simulated candidate plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimKey {
    /// Fingerprint of the evaluation context: architecture, thresholds
    /// and the shape list (order-sensitive — tile enumeration is
    /// order-dependent).
    context: u64,
    /// Unified thread count of the solution.
    threads: u32,
    /// Table 2 strategy id per GEMM.
    strategies: Vec<u8>,
    heuristic: BatchingHeuristic,
}

/// FNV-1a over a byte stream.
pub(crate) fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprint of an `(arch, thresholds, shapes)` evaluation context.
fn context_fingerprint(arch: &ArchSpec, thresholds: &Thresholds, shapes: &[GemmShape]) -> u64 {
    let mut h = fnv1a(0xCBF2_9CE4_8422_2325, arch.name.as_bytes());
    h = fnv1a(h, &thresholds.tlp_threshold.to_le_bytes());
    h = fnv1a(h, &thresholds.theta.to_le_bytes());
    for s in shapes {
        h = fnv1a(h, &(s.m as u64).to_le_bytes());
        h = fnv1a(h, &(s.n as u64).to_le_bytes());
        h = fnv1a(h, &(s.k as u64).to_le_bytes());
    }
    h
}

/// Simulate one candidate without memoization: build the plan for the
/// solution under `heuristic`, lower it, and run the simulator.
pub fn simulate_solution_uncached(
    arch: &ArchSpec,
    shapes: &[GemmShape],
    solution: &TilingSolution,
    heuristic: BatchingHeuristic,
    thresholds: &Thresholds,
) -> f64 {
    let tiles = tiles_for(shapes, solution);
    let blocks = assign_blocks(&tiles, heuristic, thresholds, solution.thread_count.threads());
    let plan = BatchPlan::from_blocks(&blocks, solution.thread_count.threads());
    let kd = lower_plan("candidate", &plan, shapes);
    simulate(arch, &LaunchSequence::Single(kd)).total_us
}

/// A concurrent memo table for candidate-plan simulation.
#[derive(Debug, Default)]
pub struct SimMemo {
    map: Mutex<HashMap<SimKey, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SimMemo {
    pub fn new() -> Self {
        SimMemo::default()
    }

    /// Simulated time of `(solution, heuristic)` in context, computed at
    /// most once per distinct key.
    pub fn simulate_solution(
        &self,
        arch: &ArchSpec,
        shapes: &[GemmShape],
        solution: &TilingSolution,
        heuristic: BatchingHeuristic,
        thresholds: &Thresholds,
    ) -> f64 {
        let key = SimKey {
            context: context_fingerprint(arch, thresholds, shapes),
            threads: solution.thread_count.threads(),
            strategies: solution.per_gemm.iter().map(|st| st.id()).collect(),
            heuristic,
        };
        if let Some(&us) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return us;
        }
        let us = simulate_solution_uncached(arch, shapes, solution, heuristic, thresholds);
        // Two workers can race on the same fresh key; both compute the
        // identical deterministic value. Only the first insert counts as
        // a miss (so `misses == len()` holds even under races); a loser
        // is answered by the winner's entry and counts as a hit.
        match self.map.lock().entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                *v.insert(us)
            }
        }
    }

    /// Lookups answered from the table (including racers that computed
    /// a value concurrently but lost the insert).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that populated the table: `misses() == len()` always,
    /// even when concurrent callers race on a fresh key.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct candidate keys cached.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Serialize every cached `(key, simulated µs)` entry plus the
    /// hit/miss counters. Entries are written sorted by key so the
    /// blob is independent of `HashMap` iteration order (save → load →
    /// save is byte-identical).
    pub fn save(&self, w: &mut ctb_savestate::Writer) {
        let map = self.map.lock();
        let mut entries: Vec<(&SimKey, &f64)> = map.iter().collect();
        entries.sort_by(|(a, _), (b, _)| {
            (a.context, a.threads, &a.strategies, heuristic_tag(a.heuristic)).cmp(&(
                b.context,
                b.threads,
                &b.strategies,
                heuristic_tag(b.heuristic),
            ))
        });
        w.len_prefix(entries.len());
        for (k, &us) in entries {
            w.u64(k.context);
            w.u32(k.threads);
            w.len_prefix(k.strategies.len());
            for &s in &k.strategies {
                w.u8(s);
            }
            w.u8(heuristic_tag(k.heuristic));
            w.f64(us);
        }
        w.len_prefix(self.hits());
        w.len_prefix(self.misses());
    }

    /// Load entries saved by [`SimMemo::save`] into this memo and
    /// force the counters to the saved values. Restored times are the
    /// exact `f64` bit patterns the original computed, so every
    /// post-restore simulation that hits the memo replays the original
    /// run bitwise.
    pub fn load(&self, r: &mut ctb_savestate::Reader<'_>) -> Result<(), ctb_savestate::SavestateError> {
        let entries = r.seq(|r| {
            let context = r.u64()?;
            let threads = r.u32()?;
            let strategies = r.seq(|r| r.u8())?;
            let heuristic = heuristic_from_tag(r.u8()?)?;
            let us = r.f64()?;
            Ok((SimKey { context, threads, strategies, heuristic }, us))
        })?;
        let hits = r.len_prefix()?;
        let misses = r.len_prefix()?;
        {
            let mut map = self.map.lock();
            for (k, us) in entries {
                map.insert(k, us);
            }
        }
        self.set_counters(hits, misses);
        Ok(())
    }

    /// Force the hit/miss counters (savestate restore: replanning
    /// against the restored memo inflates `hits`, so the engine
    /// rebuilds plans first and then pins the counters back to the
    /// checkpointed values).
    pub fn set_counters(&self, hits: usize, misses: usize) {
        self.hits.store(hits, Ordering::Relaxed);
        self.misses.store(misses, Ordering::Relaxed);
    }
}

/// Stable on-disk discriminant for [`BatchingHeuristic`].
fn heuristic_tag(h: BatchingHeuristic) -> u8 {
    match h {
        BatchingHeuristic::OneTilePerBlock => 0,
        BatchingHeuristic::Threshold => 1,
        BatchingHeuristic::Binary => 2,
    }
}

fn heuristic_from_tag(tag: u8) -> Result<BatchingHeuristic, ctb_savestate::SavestateError> {
    match tag {
        0 => Ok(BatchingHeuristic::OneTilePerBlock),
        1 => Ok(BatchingHeuristic::Threshold),
        2 => Ok(BatchingHeuristic::Binary),
        t => Err(ctb_savestate::SavestateError::Corrupt(format!(
            "bad batching-heuristic tag {t}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_tiling::select_tiling;

    fn setup() -> (ArchSpec, Thresholds, Vec<GemmShape>) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        let shapes = vec![GemmShape::new(48, 64, 96), GemmShape::new(16, 32, 128)];
        (arch, th, shapes)
    }

    #[test]
    fn memo_returns_identical_times_to_uncached_simulation() {
        let (arch, th, shapes) = setup();
        let sol = select_tiling(&shapes, &th);
        let memo = SimMemo::new();
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            let uncached = simulate_solution_uncached(&arch, &shapes, &sol, h, &th);
            let first = memo.simulate_solution(&arch, &shapes, &sol, h, &th);
            let second = memo.simulate_solution(&arch, &shapes, &sol, h, &th);
            // Bit-exact equality: a hit replays the stored f64 and the
            // first miss runs the very same pipeline as the uncached call.
            assert_eq!(uncached.to_bits(), first.to_bits());
            assert_eq!(uncached.to_bits(), second.to_bits());
        }
        assert_eq!(memo.misses(), 3);
        assert_eq!(memo.hits(), 3);
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn memo_save_load_round_trips_bitwise_and_rewrites_identically() {
        let (arch, th, shapes) = setup();
        let sol = select_tiling(&shapes, &th);
        let memo = SimMemo::new();
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            memo.simulate_solution(&arch, &shapes, &sol, h, &th);
        }
        memo.simulate_solution(&arch, &shapes, &sol, BatchingHeuristic::Binary, &th);

        let mut w = ctb_savestate::Writer::new();
        memo.save(&mut w);
        let bytes = w.into_bytes();

        let restored = SimMemo::new();
        let mut r = ctb_savestate::Reader::new(&bytes);
        restored.load(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored.len(), memo.len());
        assert_eq!(restored.hits(), memo.hits());
        assert_eq!(restored.misses(), memo.misses());
        // Restored lookups are hits returning the exact stored bits.
        let orig = memo.simulate_solution(&arch, &shapes, &sol, BatchingHeuristic::Binary, &th);
        let got = restored.simulate_solution(&arch, &shapes, &sol, BatchingHeuristic::Binary, &th);
        assert_eq!(orig.to_bits(), got.to_bits());
        // save(load(save(x))) is byte-identical (counters were bumped
        // identically by the lookups above).
        let mut w2 = ctb_savestate::Writer::new();
        restored.save(&mut w2);
        assert_eq!(w2.into_bytes(), {
            let mut w3 = ctb_savestate::Writer::new();
            memo.save(&mut w3);
            w3.into_bytes()
        });
    }

    #[test]
    fn memo_load_rejects_bad_heuristic_tag_with_typed_error() {
        let mut w = ctb_savestate::Writer::new();
        w.len_prefix(1);
        w.u64(1);
        w.u32(128);
        w.len_prefix(0);
        w.u8(9); // no such heuristic
        w.f64(1.0);
        w.len_prefix(0);
        w.len_prefix(0);
        let bytes = w.into_bytes();
        let memo = SimMemo::new();
        let err = memo.load(&mut ctb_savestate::Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, ctb_savestate::SavestateError::Corrupt(_)));
    }

    #[test]
    fn distinct_contexts_do_not_collide() {
        let (arch, th, shapes) = setup();
        let sol = select_tiling(&shapes, &th);
        let memo = SimMemo::new();
        let a = memo.simulate_solution(&arch, &shapes, &sol, BatchingHeuristic::Threshold, &th);
        // Same solution under a different architecture must be a miss.
        let pascal = ArchSpec::pascal_p100();
        let th_p = Thresholds::for_arch(&pascal);
        let sol_p = select_tiling(&shapes, &th_p);
        let b = memo.simulate_solution(&pascal, &shapes, &sol_p, BatchingHeuristic::Threshold, &th_p);
        assert_eq!(memo.misses(), 2, "different arch is a different key");
        assert!(a != b || memo.len() == 2);
    }
}

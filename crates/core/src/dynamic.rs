//! Dynamic-queue batching — a persistent-threads extension beyond the
//! paper's two static heuristics.
//!
//! The paper's programming interface (§6) is built on persistent threads
//! and its auxiliary arrays "can describe any possible batching
//! schemes". One scheme its heuristics never produce is the classic
//! *work queue*: launch exactly as many persistent blocks as the device
//! can keep resident and let each block pull the next tile when it
//! finishes its current one. Dynamic self-scheduling equalises finish
//! times under heterogeneous tile costs (variable K), where static
//! threshold/binary batching can leave stragglers.
//!
//! We plan the queue statically with the equivalent greedy rule —
//! longest-estimated-tile-first onto the earliest-available worker
//! (LPT) — which reproduces what the runtime queue converges to, and
//! encode the result in the ordinary five-array [`BatchPlan`], so the
//! functional interpreter and the simulator run it unchanged.

use crate::framework::plan_with_heuristic;
use ctb_batching::{tiles_for, BatchPlan, BatchingHeuristic, TileTask};
use ctb_gpu_specs::{occupancy, ArchSpec, BlockFootprint, Thresholds};
use ctb_matrix::GemmShape;
use ctb_tiling::{select_tiling, TilingSolution};

/// Relative cost estimate of one tile: main-loop iterations × per
/// -iteration work (the C-tile area drives FMA count; Eq 3 without the
/// thread normalisation).
fn tile_cost(t: &TileTask) -> u64 {
    let iterations = t.k.div_ceil(t.strategy.bk).max(1) as u64;
    iterations * (t.strategy.by * t.strategy.bx) as u64
}

/// Number of persistent workers: the device's residency slot capacity
/// for the solution's worst footprint, capped by the tile count.
pub fn worker_count(arch: &ArchSpec, solution: &TilingSolution, tiles: usize) -> usize {
    let mut regs = 16u32;
    let mut smem = 0u32;
    for st in &solution.per_gemm {
        regs = regs.max(st.regs_per_thread());
        smem = smem.max(st.smem_bytes());
    }
    let fp = BlockFootprint::new(solution.thread_count.threads(), regs, smem);
    let occ = occupancy::occupancy(arch, &fp);
    ((arch.sms * occ.blocks_per_sm.max(1)) as usize).min(tiles).max(1)
}

/// Assign tiles to `workers` persistent blocks by LPT greedy: sort by
/// descending estimated cost, each tile goes to the worker with the
/// least accumulated cost.
pub fn lpt_assign(tiles: &[TileTask], workers: usize) -> Vec<Vec<TileTask>> {
    assert!(workers >= 1, "need at least one worker");
    let mut order: Vec<&TileTask> = tiles.iter().collect();
    order.sort_by_key(|t| std::cmp::Reverse(tile_cost(t)));
    let mut blocks: Vec<Vec<TileTask>> = vec![Vec::new(); workers.min(tiles.len()).max(1)];
    let mut loads: Vec<u64> = vec![0; blocks.len()];
    for t in order {
        let (w, _) = loads.iter().enumerate().min_by_key(|(_, &l)| l).expect("non-empty");
        blocks[w].push(*t);
        loads[w] += tile_cost(t);
    }
    blocks.retain(|b| !b.is_empty());
    blocks
}

/// Plan a batch with the dynamic-queue scheme: paper tiling engine, LPT
/// tile assignment onto a persistent worker set whose size is auto-tuned
/// by simulation (full residency capacity down to a handful of workers —
/// fewer, longer-lived workers win when a few heavy tiles dominate).
pub fn plan_dynamic(
    arch: &ArchSpec,
    shapes: &[GemmShape],
    thresholds: &Thresholds,
) -> (TilingSolution, BatchPlan) {
    use crate::lowering::lower_plan;
    use ctb_sim::{simulate, LaunchSequence};
    let solution = select_tiling(shapes, thresholds);
    let tiles = tiles_for(shapes, &solution);
    let capacity = worker_count(arch, &solution, tiles.len());
    let mut candidates = vec![capacity];
    let mut w = capacity;
    while w > arch.sms as usize && w > 1 {
        w /= 2;
        candidates.push(w.max(1));
    }
    candidates.push((tiles.len() / 2).clamp(1, capacity));
    candidates.sort_unstable();
    candidates.dedup();

    let mut best: Option<(f64, BatchPlan)> = None;
    for workers in candidates {
        let blocks = lpt_assign(&tiles, workers);
        let plan = BatchPlan::from_blocks(&blocks, solution.thread_count.threads());
        let kd = lower_plan("dynamic_queue", &plan, shapes);
        let us = simulate(arch, &LaunchSequence::Single(kd)).total_us;
        if best.as_ref().is_none_or(|(b, _)| us < *b) {
            best = Some((us, plan));
        }
    }
    let (_, plan) = best.expect("at least one candidate");
    (solution, plan)
}

/// Simulated time of the dynamic-queue plan (µs), for comparisons.
pub fn simulate_dynamic(arch: &ArchSpec, shapes: &[GemmShape], thresholds: &Thresholds) -> f64 {
    use crate::lowering::lower_plan;
    use ctb_sim::{simulate, LaunchSequence};
    let (solution, plan) = plan_dynamic(arch, shapes, thresholds);
    debug_assert!(plan.validate(shapes, &solution).is_ok());
    let kd = lower_plan("dynamic_queue", &plan, shapes);
    simulate(arch, &LaunchSequence::Single(kd)).total_us
}

/// Convenience: the simulated time of the paper's best static heuristic
/// on the same batch (for head-to-head tests).
pub fn simulate_best_static(arch: &ArchSpec, shapes: &[GemmShape], thresholds: &Thresholds) -> f64 {
    use crate::lowering::lower_plan;
    use ctb_sim::{simulate, LaunchSequence};
    [BatchingHeuristic::OneTilePerBlock, BatchingHeuristic::Threshold, BatchingHeuristic::Binary]
        .into_iter()
        .map(|h| {
            let (_, plan) = plan_with_heuristic(shapes, thresholds, h);
            let kd = lower_plan("static", &plan, shapes);
            simulate(arch, &LaunchSequence::Single(kd)).total_us
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ArchSpec, Thresholds) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        (arch, th)
    }

    #[test]
    fn lpt_balances_heterogeneous_loads() {
        use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
        let st = batched(StrategyKind::Small, ThreadCount::T256);
        // Tiles with wildly different K.
        let tiles: Vec<TileTask> = (0..16)
            .map(|i| TileTask { gemm: 0, y: i, x: 0, k: if i == 0 { 4096 } else { 64 }, strategy: st })
            .collect();
        let blocks = lpt_assign(&tiles, 4);
        assert_eq!(blocks.iter().map(Vec::len).sum::<usize>(), 16);
        // The monster tile must sit alone-ish: its worker gets few
        // others.
        let monster_block = blocks.iter().find(|b| b.iter().any(|t| t.k == 4096)).unwrap();
        assert!(monster_block.len() <= 2, "monster block has {} tiles", monster_block.len());
    }

    #[test]
    fn dynamic_plan_validates_and_computes_correctly() {
        use ctb_matrix::{assert_all_close, GemmBatch};
        let (arch, th) = setup();
        let shapes = vec![
            GemmShape::new(48, 40, 512),
            GemmShape::new(17, 65, 33),
            GemmShape::new(96, 96, 128),
        ];
        let (sol, plan) = plan_dynamic(&arch, &shapes, &th);
        plan.validate(&shapes, &sol).expect("valid plan");
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, 77);
        let got = crate::interface::execute_plan(&batch, &plan);
        assert_all_close(&batch.reference_result(), &got, 5e-4);
    }

    #[test]
    fn dynamic_queue_handles_heterogeneous_k_well() {
        // A batch mixing K = 32 and K = 2048 tiles: LPT should be at
        // least competitive with the best static heuristic.
        let (arch, th) = setup();
        let mut shapes = vec![GemmShape::new(64, 64, 2048); 4];
        shapes.extend(vec![GemmShape::new(64, 64, 32); 28]);
        let dynamic = simulate_dynamic(&arch, &shapes, &th);
        let static_best = simulate_best_static(&arch, &shapes, &th);
        assert!(
            dynamic <= static_best * 1.25,
            "dynamic {dynamic} vs best static {static_best}"
        );
    }

    #[test]
    fn worker_count_respects_device_capacity() {
        let (arch, th) = setup();
        let shapes = vec![GemmShape::new(2048, 2048, 64); 4];
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let w = worker_count(&arch, &sol, tiles.len());
        assert!(w >= arch.sms as usize, "at least one worker per SM, got {w}");
        assert!(w <= tiles.len());
        // A tiny batch never gets more workers than tiles.
        let tiny = vec![GemmShape::new(16, 16, 8)];
        let sol = select_tiling(&tiny, &th);
        assert_eq!(worker_count(&arch, &sol, 1), 1);
    }
}

//! Online hot-swap seam for calibrated cost models and forests.
//!
//! ctb-calib fits a [`CorrectionSet`] (per-arch analytical-model
//! corrections) and optionally retrains the forest selector from
//! recorded traces. Serving traffic must pick the new profile up
//! *without a restart*: every planner that should react to calibration
//! reads a [`CalibHandle`] owned by its [`PlanShare`](crate::PlanShare).
//!
//! Ownership rules (also documented in DESIGN.md):
//!
//! * The handle owns an `Arc<CalibState>` behind an `RwLock`. Readers
//!   take a [`CalibHandle::snapshot`] — a cheap `Arc` clone — and use
//!   that one immutable state for the whole decision, so a concurrent
//!   [`CalibHandle::install`] can never tear a single prediction.
//! * `install` replaces the whole state and bumps the monotonically
//!   increasing version. Version `0` is the identity state (no
//!   correction entries, no selector): planners treat it as "never
//!   calibrated" and stay bit-for-bit on their uncalibrated paths.
//! * The handle itself is **never serialized**. Savestate restore
//!   rebuilds shares at version 0; calibration is re-installed by the
//!   operator after restore (the event engine refuses to checkpoint
//!   mid-calibration for exactly this reason).
//! * Old states die when the last in-flight reader drops its snapshot
//!   — swap-under-load frees nothing that is still being read.

use ctb_sim::CorrectionSet;
use parking_lot::RwLock;
use std::sync::Arc;

use crate::selector::OnlineSelector;

/// One immutable calibration epoch: a correction set for the analytical
/// model plus an optional replacement forest selector.
#[derive(Debug)]
pub struct CalibState {
    /// Monotone epoch counter; `0` is the pristine identity state.
    pub version: u64,
    /// Per-arch model corrections (empty = pass-through).
    pub correction: Arc<CorrectionSet>,
    /// Retrained selector for [`BatchingPolicy::Swappable`](crate::BatchingPolicy::Swappable)
    /// sessions; `None` falls back to the best-of-both exhaustive choice.
    pub selector: Option<Arc<OnlineSelector>>,
}

impl CalibState {
    fn identity() -> Self {
        CalibState { version: 0, correction: Arc::new(CorrectionSet::identity()), selector: None }
    }
}

/// The `Arc`-swappable calibration handle threaded through
/// [`PlanShare`](crate::PlanShare).
#[derive(Debug)]
pub struct CalibHandle {
    state: RwLock<Arc<CalibState>>,
}

impl Default for CalibHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl CalibHandle {
    /// A handle at the identity state (version 0).
    pub fn new() -> Self {
        CalibHandle { state: RwLock::new(Arc::new(CalibState::identity())) }
    }

    /// The current epoch, as one immutable snapshot. Hold this for the
    /// duration of a decision; do not re-read per field.
    pub fn snapshot(&self) -> Arc<CalibState> {
        Arc::clone(&self.state.read())
    }

    /// Current epoch counter (0 until the first [`install`](Self::install)).
    pub fn version(&self) -> u64 {
        self.state.read().version
    }

    /// Atomically replace the installed profile; returns the new
    /// version. In-flight readers keep their old snapshot.
    pub fn install(
        &self,
        correction: Arc<CorrectionSet>,
        selector: Option<Arc<OnlineSelector>>,
    ) -> u64 {
        let mut guard = self.state.write();
        let version = guard.version + 1;
        *guard = Arc::new(CalibState { version, correction, selector });
        version
    }

    /// Convenience: correct one raw model prediction under the current
    /// epoch. Identity state returns `model_us` bit-for-bit unchanged.
    pub fn correct(&self, arch: &str, model_us: f64, features: &[f64]) -> f64 {
        self.snapshot().correction.correct(arch, model_us, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_sim::CostCorrection;

    #[test]
    fn identity_handle_is_passthrough_at_version_zero() {
        let h = CalibHandle::new();
        assert_eq!(h.version(), 0);
        assert!(h.snapshot().selector.is_none());
        assert_eq!(h.correct("Tesla V100", 42.5, &[1.0, 2.0, 3.0, 4.0]).to_bits(), 42.5f64.to_bits());
    }

    #[test]
    fn install_bumps_version_and_swaps_state() {
        let h = CalibHandle::new();
        let mut set = CorrectionSet::identity();
        set.insert("X", CostCorrection { coeffs: [1.0, 2.0, 0.0, 0.0, 0.0, 0.0] });
        let v1 = h.install(Arc::new(set), None);
        assert_eq!(v1, 1);
        assert_eq!(h.version(), 1);
        assert_eq!(h.correct("X", 10.0, &[]), 21.0);
        let v2 = h.install(Arc::new(CorrectionSet::identity()), None);
        assert_eq!(v2, 2);
        assert_eq!(h.correct("X", 10.0, &[]), 10.0);
    }

    #[test]
    fn in_flight_snapshot_survives_an_install() {
        let h = CalibHandle::new();
        let old = h.snapshot();
        h.install(Arc::new(CorrectionSet::identity()), None);
        assert_eq!(old.version, 0);
        assert_eq!(h.version(), 1);
    }
}

//! The coordinated tiling + batching framework — the paper's primary
//! contribution (Fig 4).
//!
//! [`Framework::run`] takes a [`ctb_matrix::GemmBatch`] through the two
//! phases:
//!
//! 1. **Tiling engine** (§4): [`ctb_tiling::select_tiling`] picks one
//!    Table 2 strategy per GEMM under the unified thread structure;
//! 2. **Batching engine** (§5): a batching policy (threshold heuristic,
//!    binary heuristic, best-of-both, or the random-forest online
//!    selector) assigns the tiles to thread blocks.
//!
//! The result is an [`ExecutionPlan`] holding the five auxiliary arrays
//! of §6. The plan is *executed* twice over:
//!
//! * functionally, by the persistent-threads interpreter in
//!   [`interface`] (the Fig 7 code skeleton), producing real `f32`
//!   results checkable against the reference GEMM;
//! * temporally, by lowering it to a [`ctb_sim::KernelDesc`]
//!   ([`lowering`]) and running the timing simulator.

pub mod admission;
pub mod autotune;
pub mod dynamic;
pub mod framework;
pub mod hotswap;
pub mod interface;
pub mod lowering;
pub mod memo;
pub mod selector;
pub mod session;
pub mod splitk;

pub use framework::{BatchingPolicy, ExecutionPlan, Framework, FrameworkConfig, RunOutcome};
pub use hotswap::{CalibHandle, CalibState};
pub use interface::{execute_plan, execute_plan_unpacked};
pub use memo::SimMemo;
pub use lowering::{lower_plan, tile_pass};
pub use selector::OnlineSelector;
pub use admission::{AdmissionPolicy, AdmissionStats, BloomGate};
pub use session::{operand_bytes, shape_sig_hash, CacheStats, OperandHome, PlanShare, PlanShareConfig, Session};
pub use dynamic::{plan_dynamic, simulate_dynamic};
pub use splitk::{plan_splitk, run_splitk};

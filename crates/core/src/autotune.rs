//! Simulation-driven exhaustive tiling search — an ablation for the
//! paper's heuristic tiling algorithm (§4.2.3).
//!
//! The paper selects tile strategies with a threshold-guided priority
//! walk because real hardware makes exhaustive search expensive. With a
//! simulator, the optimum is cheap to find: enumerate every *uniform*
//! assignment (all GEMMs share one Table 2 strategy) and then refine one
//! GEMM at a time by coordinate descent. `reproduce ablate` compares the
//! heuristic against this tuned bound, quantifying how much the
//! threshold rule leaves on the table.

use crate::framework::plan_with_heuristic;
use crate::lowering::lower_plan;
use ctb_batching::{assign_blocks, tiles_for, BatchPlan, BatchingHeuristic};
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_sim::{simulate, LaunchSequence};
use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
use ctb_tiling::{model, TilingSolution};

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    pub solution: TilingSolution,
    pub heuristic: BatchingHeuristic,
    pub us: f64,
    /// Simulated time of the paper's heuristic plan, for comparison.
    pub heuristic_us: f64,
    /// Candidate plans evaluated.
    pub evaluated: usize,
}

fn simulate_solution(
    arch: &ArchSpec,
    shapes: &[GemmShape],
    solution: &TilingSolution,
    heuristic: BatchingHeuristic,
    thresholds: &Thresholds,
) -> f64 {
    let tiles = tiles_for(shapes, solution);
    let blocks = assign_blocks(&tiles, heuristic, thresholds, solution.thread_count.threads());
    let plan = BatchPlan::from_blocks(&blocks, solution.thread_count.threads());
    let kd = lower_plan("autotune", &plan, shapes);
    simulate(arch, &LaunchSequence::Single(kd)).total_us
}

fn available_for(shape: &GemmShape, tc: ThreadCount) -> Vec<ctb_tiling::TilingStrategy> {
    let mut v: Vec<_> = StrategyKind::ALL
        .iter()
        .map(|&k| batched(k, tc))
        .filter(|st| st.fits(shape.m, shape.n))
        .collect();
    if v.is_empty() {
        v.push(batched(StrategyKind::Small, tc));
    }
    v
}

/// Exhaustively search tile strategies (uniform passes + coordinate
/// descent) and batching heuristics for the fastest simulated plan.
pub fn autotune(arch: &ArchSpec, shapes: &[GemmShape], thresholds: &Thresholds) -> AutotuneResult {
    assert!(!shapes.is_empty(), "empty batch");
    let heuristics = [
        BatchingHeuristic::OneTilePerBlock,
        BatchingHeuristic::Threshold,
        BatchingHeuristic::Binary,
    ];

    let mut evaluated = 0usize;
    let mut best: Option<(TilingSolution, BatchingHeuristic, f64)> = None;
    let consider = |sol: &TilingSolution,
                        best: &mut Option<(TilingSolution, BatchingHeuristic, f64)>,
                        evaluated: &mut usize| {
        for h in heuristics {
            let us = simulate_solution(arch, shapes, sol, h, thresholds);
            *evaluated += 1;
            if best.as_ref().is_none_or(|(_, _, b)| us < *b) {
                *best = Some((sol.clone(), h, us));
            }
        }
    };

    for tc in [ThreadCount::T256, ThreadCount::T128] {
        // Uniform passes: every GEMM uses its clamp of one target kind.
        for kind in StrategyKind::ALL {
            let per_gemm: Vec<_> = shapes
                .iter()
                .map(|s| {
                    let avail = available_for(s, tc);
                    let target = batched(kind, tc);
                    avail.iter().rev().find(|st| st.kind <= target.kind).copied().unwrap_or(avail[0])
                })
                .collect();
            let tlp = model::tlp(shapes, &per_gemm);
            let sol = TilingSolution { thread_count: tc, per_gemm, tlp };
            consider(&sol, &mut best, &mut evaluated);
        }
    }

    // Coordinate descent from the best uniform solution.
    let (mut sol, mut h, mut us) = best.clone().expect("at least one candidate");
    let mut improved = true;
    while improved {
        improved = false;
        for g in 0..shapes.len() {
            for cand in available_for(&shapes[g], sol.thread_count) {
                if cand == sol.per_gemm[g] {
                    continue;
                }
                let mut trial = sol.clone();
                trial.per_gemm[g] = cand;
                trial.tlp = model::tlp(shapes, &trial.per_gemm);
                for heur in heuristics {
                    let t = simulate_solution(arch, shapes, &trial, heur, thresholds);
                    evaluated += 1;
                    if t < us {
                        sol = trial.clone();
                        h = heur;
                        us = t;
                        improved = true;
                    }
                }
            }
        }
    }

    // The paper's heuristic, for the ablation delta.
    let (heuristic_sol, heuristic_plan) =
        plan_with_heuristic(shapes, thresholds, BatchingHeuristic::Threshold);
    let kd = lower_plan("heuristic", &heuristic_plan, shapes);
    let _ = heuristic_sol;
    let heuristic_us = simulate(arch, &LaunchSequence::Single(kd)).total_us;

    AutotuneResult { solution: sol, heuristic: h, us, heuristic_us, evaluated }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ArchSpec, Thresholds) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        (arch, th)
    }

    #[test]
    fn autotune_never_loses_to_the_heuristic() {
        let (arch, th) = setup();
        for shapes in [
            vec![GemmShape::new(64, 64, 64); 8],
            vec![GemmShape::new(16, 32, 128), GemmShape::new(256, 256, 64)],
            ctb_matrix::gen::random_case(5),
        ] {
            let r = autotune(&arch, &shapes, &th);
            assert!(
                r.us <= r.heuristic_us * 1.0001,
                "autotune {} vs heuristic {}",
                r.us,
                r.heuristic_us
            );
            assert!(r.evaluated >= 12, "evaluated {}", r.evaluated);
        }
    }

    #[test]
    fn solutions_respect_availability() {
        let (arch, th) = setup();
        let shapes = vec![GemmShape::new(16, 32, 128), GemmShape::new(200, 40, 64)];
        let r = autotune(&arch, &shapes, &th);
        for (s, st) in shapes.iter().zip(&r.solution.per_gemm) {
            assert!(st.fits(s.m, s.n) || st.kind == StrategyKind::Small);
            assert_eq!(st.threads, r.solution.thread_count.threads());
        }
    }

    #[test]
    fn heuristic_is_close_to_tuned_on_paper_workloads() {
        // The paper's algorithm should be within ~2x of the simulated
        // optimum on its own target regime (sanity on the heuristic).
        let (arch, th) = setup();
        let shapes = ctb_matrix::gen::uniform_case(16, 128, 128, 128);
        let r = autotune(&arch, &shapes, &th);
        assert!(
            r.heuristic_us <= r.us * 2.0,
            "heuristic {} vs tuned {}",
            r.heuristic_us,
            r.us
        );
    }
}

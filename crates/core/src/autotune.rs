//! Simulation-driven exhaustive tiling search — an ablation for the
//! paper's heuristic tiling algorithm (§4.2.3).
//!
//! The paper selects tile strategies with a threshold-guided priority
//! walk because real hardware makes exhaustive search expensive. With a
//! simulator, the optimum is cheap to find: enumerate every *uniform*
//! assignment (all GEMMs share one Table 2 strategy) and then refine one
//! GEMM at a time by coordinate descent. `reproduce ablate` compares the
//! heuristic against this tuned bound, quantifying how much the
//! threshold rule leaves on the table.

use crate::framework::plan_with_heuristic;
use crate::memo::SimMemo;
use ctb_batching::BatchingHeuristic;
use ctb_gpu_specs::{ArchSpec, Thresholds};
use ctb_matrix::GemmShape;
use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};
use ctb_tiling::{model, TilingSolution};
use rayon::prelude::*;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct AutotuneResult {
    pub solution: TilingSolution,
    pub heuristic: BatchingHeuristic,
    pub us: f64,
    /// Simulated time of the paper's heuristic plan, for comparison.
    pub heuristic_us: f64,
    /// Candidate plans evaluated.
    pub evaluated: usize,
    /// Simulator pipeline runs actually performed (memo misses).
    pub sim_calls: usize,
    /// Candidate evaluations answered from the simulation memo.
    pub memo_hits: usize,
}

fn available_for(shape: &GemmShape, tc: ThreadCount) -> Vec<ctb_tiling::TilingStrategy> {
    let mut v: Vec<_> = StrategyKind::ALL
        .iter()
        .map(|&k| batched(k, tc))
        .filter(|st| st.fits(shape.m, shape.n))
        .collect();
    if v.is_empty() {
        v.push(batched(StrategyKind::Small, tc));
    }
    v
}

/// Exhaustively search tile strategies (uniform passes + coordinate
/// descent) and batching heuristics for the fastest simulated plan.
///
/// Candidate `(solution, heuristic)` pairs are simulated in parallel on
/// the rayon pool and answered from a [`SimMemo`] when revisited; the
/// winner is then chosen by a serial scan in the same candidate order
/// the original greedy search used, so the selected solution, heuristic
/// and simulated times are identical to an unmemoized, serial run.
pub fn autotune(arch: &ArchSpec, shapes: &[GemmShape], thresholds: &Thresholds) -> AutotuneResult {
    assert!(!shapes.is_empty(), "empty batch");
    let heuristics = [
        BatchingHeuristic::OneTilePerBlock,
        BatchingHeuristic::Threshold,
        BatchingHeuristic::Binary,
    ];
    let memo = SimMemo::new();
    // Evaluate `(solution index, heuristic)` pairs in parallel,
    // returning times in pair order for the deterministic serial scans.
    let eval_pairs = |sols: &[TilingSolution]| -> Vec<(usize, BatchingHeuristic, f64)> {
        let pairs: Vec<(usize, BatchingHeuristic)> = (0..sols.len())
            .flat_map(|i| heuristics.iter().map(move |&h| (i, h)))
            .collect();
        pairs
            .into_par_iter()
            .map(|(i, h)| (i, h, memo.simulate_solution(arch, shapes, &sols[i], h, thresholds)))
            .collect()
    };

    let mut evaluated = 0usize;

    // Uniform passes: every GEMM uses its clamp of one target kind.
    let mut uniform: Vec<TilingSolution> = Vec::new();
    for tc in [ThreadCount::T256, ThreadCount::T128] {
        for kind in StrategyKind::ALL {
            let per_gemm: Vec<_> = shapes
                .iter()
                .map(|s| {
                    let avail = available_for(s, tc);
                    let target = batched(kind, tc);
                    avail.iter().rev().find(|st| st.kind <= target.kind).copied().unwrap_or(avail[0])
                })
                .collect();
            let tlp = model::tlp(shapes, &per_gemm);
            uniform.push(TilingSolution { thread_count: tc, per_gemm, tlp });
        }
    }
    let mut best: Option<(TilingSolution, BatchingHeuristic, f64)> = None;
    for (i, h, us) in eval_pairs(&uniform) {
        evaluated += 1;
        if best.as_ref().is_none_or(|(_, _, b)| us < *b) {
            best = Some((uniform[i].clone(), h, us));
        }
    }

    // Coordinate descent from the best uniform solution. Within one
    // GEMM `g` every trial only replaces `per_gemm[g]` (and recomputes
    // TLP), so a mid-scan improvement at `g` cannot change the
    // remaining trials of the same `g` — which is what makes it valid
    // to simulate them all in parallel up front and replay the greedy
    // first-improvement scan serially afterwards.
    let (mut sol, mut h, mut us) = best.clone().expect("at least one candidate");
    let mut improved = true;
    while improved {
        improved = false;
        for g in 0..shapes.len() {
            let trials: Vec<TilingSolution> = available_for(&shapes[g], sol.thread_count)
                .into_iter()
                .filter(|cand| *cand != sol.per_gemm[g])
                .map(|cand| {
                    let mut trial = sol.clone();
                    trial.per_gemm[g] = cand;
                    trial.tlp = model::tlp(shapes, &trial.per_gemm);
                    trial
                })
                .collect();
            for (i, heur, t) in eval_pairs(&trials) {
                evaluated += 1;
                if t < us {
                    sol = trials[i].clone();
                    h = heur;
                    us = t;
                    improved = true;
                }
            }
        }
    }

    // The paper's heuristic, for the ablation delta. Re-simulating the
    // heuristic's solution goes through the memo too: on uniform
    // batches the threshold-selected solution is one of the uniform
    // candidates above, so this lookup is a guaranteed hit.
    let (heuristic_sol, _heuristic_plan) =
        plan_with_heuristic(shapes, thresholds, BatchingHeuristic::Threshold);
    let heuristic_us =
        memo.simulate_solution(arch, shapes, &heuristic_sol, BatchingHeuristic::Threshold, thresholds);

    AutotuneResult {
        solution: sol,
        heuristic: h,
        us,
        heuristic_us,
        evaluated,
        sim_calls: memo.misses(),
        memo_hits: memo.hits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ArchSpec, Thresholds) {
        let arch = ArchSpec::volta_v100();
        let th = Thresholds::for_arch(&arch);
        (arch, th)
    }

    #[test]
    fn autotune_never_loses_to_the_heuristic() {
        let (arch, th) = setup();
        for shapes in [
            vec![GemmShape::new(64, 64, 64); 8],
            vec![GemmShape::new(16, 32, 128), GemmShape::new(256, 256, 64)],
            ctb_matrix::gen::random_case(5),
        ] {
            let r = autotune(&arch, &shapes, &th);
            assert!(
                r.us <= r.heuristic_us * 1.0001,
                "autotune {} vs heuristic {}",
                r.us,
                r.heuristic_us
            );
            assert!(r.evaluated >= 12, "evaluated {}", r.evaluated);
        }
    }

    #[test]
    fn solutions_respect_availability() {
        let (arch, th) = setup();
        let shapes = vec![GemmShape::new(16, 32, 128), GemmShape::new(200, 40, 64)];
        let r = autotune(&arch, &shapes, &th);
        for (s, st) in shapes.iter().zip(&r.solution.per_gemm) {
            assert!(st.fits(s.m, s.n) || st.kind == StrategyKind::Small);
            assert_eq!(st.threads, r.solution.thread_count.threads());
        }
    }

    #[test]
    fn memoization_saves_simulator_calls_without_changing_the_winner() {
        let (arch, th) = setup();
        let shapes = ctb_matrix::gen::uniform_case(16, 128, 128, 128);
        let r = autotune(&arch, &shapes, &th);
        // Every candidate evaluation plus the final heuristic lookup
        // went through the memo; strictly fewer simulator pipelines ran
        // than candidates were considered.
        assert_eq!(r.sim_calls + r.memo_hits, r.evaluated + 1);
        assert!(r.memo_hits > 0, "expected memo hits, got none");
        assert!(r.sim_calls < r.evaluated, "sim {} vs evaluated {}", r.sim_calls, r.evaluated);
        // The memoized winner replays the exact uncached simulation.
        let uncached =
            crate::memo::simulate_solution_uncached(&arch, &shapes, &r.solution, r.heuristic, &th);
        assert_eq!(uncached.to_bits(), r.us.to_bits(), "memoized us diverges from uncached");
        // Same for the heuristic comparison point.
        let (h_sol, _) = plan_with_heuristic(&shapes, &th, BatchingHeuristic::Threshold);
        let h_uncached = crate::memo::simulate_solution_uncached(
            &arch,
            &shapes,
            &h_sol,
            BatchingHeuristic::Threshold,
            &th,
        );
        assert_eq!(h_uncached.to_bits(), r.heuristic_us.to_bits());
    }

    #[test]
    fn heuristic_is_close_to_tuned_on_paper_workloads() {
        // The paper's algorithm should be within ~2x of the simulated
        // optimum on its own target regime (sanity on the heuristic).
        let (arch, th) = setup();
        let shapes = ctb_matrix::gen::uniform_case(16, 128, 128, 128);
        let r = autotune(&arch, &shapes, &th);
        assert!(
            r.heuristic_us <= r.us * 2.0,
            "heuristic {} vs tuned {}",
            r.heuristic_us,
            r.us
        );
    }
}

//! Lowering batch plans to the simulator's cost IR.
//!
//! A tile under strategy `(BY, BX, BK)` and GEMM depth `K` becomes a
//! [`TilePass`] with the per-iteration instruction counts of the Fig 2
//! code skeleton: Eq 2 global loads, Eq 3 FMAs, the shared-memory
//! fragment loads of the register double buffer, and the vectorised C
//! write-back in the epilogue.

use ctb_batching::{BatchPlan, TileTask};
use ctb_gpu_specs::BlockFootprint;
use ctb_matrix::GemmShape;
use ctb_sim::{BlockWork, KernelDesc, TilePass};
use ctb_tiling::{model, TilingStrategy};

/// Per-thread auxiliary (address/loop) instructions per main-loop
/// iteration — offset computation, compare, branch (footnote 1 of the
/// paper).
const AUX_PER_ITERATION: f64 = 4.0;

/// Cost of one tile's main loop under `strategy` for a GEMM with depth
/// `k`.
pub fn tile_pass(strategy: &TilingStrategy, k: usize) -> TilePass {
    let t = strategy.threads as f64;
    TilePass {
        iterations: k.div_ceil(strategy.bk).max(1) as u32,
        fma_per_thread: model::num_fma(strategy),
        // Register-fragment loads from shared memory (Fig 2 lines
        // 15–16): (sub_y + sub_x) floats per K step, 4-float vectorised.
        ld_shared_per_thread: (strategy.sub_y + strategy.sub_x) as f64 * strategy.bk as f64 / 4.0,
        ld_global_per_thread: model::num_load(strategy),
        aux_per_thread: AUX_PER_ITERATION,
        // C write-back: BY·BX floats across the block, 4-float stores.
        epilogue_stores: ((strategy.by * strategy.bx) as f64 / (4.0 * t)).max(1.0),
    }
}

/// Warp width used when rounding active-thread counts (32 on every
/// NVIDIA generation the paper evaluates).
const WARP: u32 = 32;

/// Threads of a `block_size`-thread block that do useful work on `tile`,
/// warp-rounded: boundary tiles cover only part of `BY × BX`, so part of
/// the block idles (bounds-checked out in the real kernel).
pub fn active_threads_for(tile: &TileTask, block_size: u32, shapes: &[GemmShape]) -> u32 {
    let shape = shapes[tile.gemm];
    let coverage = (tile.rows(shape.m) * tile.cols(shape.n)) as f64
        / (tile.strategy.by * tile.strategy.bx) as f64;
    let active = (block_size as f64 * coverage).ceil() as u32;
    active.div_ceil(WARP) * WARP
}

/// The work of one thread block executing `tiles` within a
/// `block_size`-thread block. The block's active-thread count is the
/// worst (largest) demand among its tiles.
pub fn block_work(tiles: &[TileTask], block_size: u32, shapes: &[GemmShape]) -> BlockWork {
    let active = tiles
        .iter()
        .map(|t| active_threads_for(t, block_size, shapes))
        .max()
        .unwrap_or(0)
        .min(block_size.div_ceil(WARP) * WARP);
    BlockWork {
        active_threads: active,
        passes: tiles.iter().map(|t| tile_pass(&t.strategy, t.k)).collect(),
    }
}

/// Lower a coordinated [`BatchPlan`] to a single-kernel description.
///
/// Under the unified thread structure every strategy in the plan uses
/// the plan's block size, so every thread is active; the footprint takes
/// the maximum register/shared-memory demand across the strategies that
/// actually appear (the kernel must accommodate its largest resident
/// variant).
pub fn lower_plan(name: &str, plan: &BatchPlan, shapes: &[GemmShape]) -> KernelDesc {
    let mut regs = 16u32;
    let mut smem = 0u32;
    for &id in &plan.tiling {
        let st = TilingStrategy::from_id(id);
        regs = regs.max(st.regs_per_thread());
        smem = smem.max(st.smem_bytes());
    }
    let footprint = BlockFootprint::new(plan.threads, regs, smem);
    let blocks = (0..plan.num_blocks())
        .map(|b| block_work(&plan.block_tiles(b, shapes), plan.threads, shapes))
        .collect();
    KernelDesc::new(name, footprint, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_batching::{assign_blocks, tiles_for, BatchingHeuristic};
    use ctb_gpu_specs::Thresholds;
    use ctb_tiling::select_tiling;
    use ctb_tiling::strategy::{batched, StrategyKind, ThreadCount};

    #[test]
    fn tile_pass_matches_paper_models() {
        let large = batched(StrategyKind::Large, ThreadCount::T256);
        let p = tile_pass(&large, 64);
        assert_eq!(p.iterations, 8);
        // Eq 3: 64*64*8/256 = 128 FMA per thread per iteration.
        assert!((p.fma_per_thread - 128.0).abs() < 1e-12);
        // Eq 2: (64*8 + 8*64)/(4*256) = 1 global load.
        assert!((p.ld_global_per_thread - 1.0).abs() < 1e-12);
        // (4+4)*8/4 = 16 shared loads.
        assert!((p.ld_shared_per_thread - 16.0).abs() < 1e-12);
        // 64*64/(4*256) = 4 stores.
        assert!((p.epilogue_stores - 4.0).abs() < 1e-12);
    }

    #[test]
    fn iterations_round_up_and_floor_at_one() {
        let small = batched(StrategyKind::Small, ThreadCount::T128);
        assert_eq!(tile_pass(&small, 9).iterations, 2);
        assert_eq!(tile_pass(&small, 1).iterations, 1);
        assert_eq!(tile_pass(&small, 0).iterations, 1);
    }

    #[test]
    fn lowered_plan_has_one_block_work_per_block() {
        let shapes =
            vec![GemmShape::new(64, 64, 32), GemmShape::new(128, 128, 64), GemmShape::new(16, 32, 16)];
        let th = Thresholds::paper_v100();
        let sol = select_tiling(&shapes, &th);
        let tiles = tiles_for(&shapes, &sol);
        let blocks = assign_blocks(&tiles, BatchingHeuristic::Threshold, &th, sol.thread_count.threads());
        let plan = ctb_batching::BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        let kd = lower_plan("test", &plan, &shapes);
        assert_eq!(kd.blocks.len(), plan.num_blocks());
        assert_eq!(kd.footprint.threads, sol.thread_count.threads());
        assert_eq!(kd.bubble_blocks(), 0, "coordinated plans have no bubbles");
        // Pass counts match tiles per block.
        for (b, bw) in kd.blocks.iter().enumerate() {
            assert_eq!(bw.passes.len(), plan.block_tiles(b, &shapes).len());
            assert_eq!(bw.active_threads, plan.threads);
        }
    }

    #[test]
    fn footprint_takes_worst_case_resources() {
        let small = batched(StrategyKind::Small, ThreadCount::T256);
        let huge = batched(StrategyKind::Huge, ThreadCount::T256);
        let tiles = vec![
            TileTask { gemm: 0, y: 0, x: 0, k: 8, strategy: small },
            TileTask { gemm: 1, y: 0, x: 0, k: 8, strategy: huge },
        ];
        let plan = ctb_batching::BatchPlan::from_blocks(&[tiles], 256);
        let shapes = vec![GemmShape::new(16, 16, 8), GemmShape::new(128, 128, 8)];
        let kd = lower_plan("mix", &plan, &shapes);
        assert_eq!(kd.footprint.smem_bytes, huge.smem_bytes());
        assert_eq!(kd.footprint.regs_per_thread, huge.regs_per_thread());
    }
}

//! The functional persistent-threads interpreter — the Fig 7
//! programming interface.
//!
//! Each thread block walks its `[Tile[b], Tile[b+1])` range, parses the
//! GEMM and tile information from the auxiliary arrays, and executes the
//! Fig 2 main loop for that tile: accumulate over K in `BK` chunks, then
//! write back `alpha * acc + beta * C`. Blocks run in parallel on the
//! rayon pool — they own disjoint C tiles by construction (validated by
//! [`ctb_batching::BatchPlan::validate`]), mirroring the CUDA execution
//! model where each tile is produced by exactly one block.
//!
//! Two executors are provided:
//!
//! * [`execute_plan`] — the packed micro-kernel engine. Tiles are
//!   bucketed per (GEMM, tile-row) and each output matrix is split into
//!   disjoint row bands, so every band is computed and written by
//!   exactly one worker with no intermediate tile buffers. The inner
//!   loop is a 4×4 register-tile kernel over hoisted A-row slices with
//!   a scalar fallback for boundary fringes; the alpha/beta epilogue is
//!   folded into the single per-worker accumulator pass.
//! * [`execute_plan_unpacked`] — the original collect-then-scatter
//!   interpreter, kept as the A/B baseline for the perf harness.
//!
//! Both paths apply every floating-point operation to each C element in
//! the same order (ascending k, then `alpha * acc + beta * c`), so
//! their results are bitwise identical.

use std::cell::RefCell;

use ctb_batching::BatchPlan;
use ctb_matrix::{GemmBatch, MatF32};
use ctb_tiling::TilingStrategy;
use rayon::prelude::*;

// ---------------------------------------------------------------------------
// Packed engine
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-worker accumulator scratch, reused across every tile a worker
    /// executes. Grows to the largest `by * bx` seen and is never freed
    /// until the thread exits, so the steady-state hot loop performs no
    /// heap allocation.
    static TILE_ACC: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// One row band of one output matrix together with the tiles that land
/// in it. Bands of the same matrix are produced by `chunks_mut`, so
/// ownership is disjoint by construction and the scatter needs no
/// synchronisation.
struct BandJob<'a> {
    gemm: usize,
    strategy: TilingStrategy,
    /// First matrix row covered by this band.
    y0: usize,
    /// `rows_in_band * n` slice of the output matrix.
    band: &'a mut [f32],
    /// Tile indices (into the plan's flat tile arrays) in this band.
    tiles: Vec<usize>,
}

/// Accumulate one `rows × cols` C tile into `acc` (row-major), reading
/// A rows as hoisted slices. The interior runs a 4-row register-packed
/// kernel: each K step broadcasts four A scalars against one contiguous
/// B row segment, updating four accumulator rows at once (the inner
/// loop auto-vectorizes and B is read once per four C rows instead of
/// once per row). Leftover rows fall back to a scalar single-row loop.
/// Every element accumulates in ascending-k order, so results are
/// bitwise identical to the naive per-element loop.
#[allow(clippy::too_many_arguments)]
fn tile_kernel(
    a: &[f32],
    b: &[f32],
    kdim: usize,
    n: usize,
    y0: usize,
    x0: usize,
    rows: usize,
    cols: usize,
    acc: &mut [f32],
) {
    debug_assert_eq!(acc.len(), rows * cols);
    const MR: usize = 4;
    const NR: usize = 8;
    let mut i = 0;
    while i + MR <= rows {
        let ra = [
            &a[(y0 + i) * kdim..(y0 + i) * kdim + kdim],
            &a[(y0 + i + 1) * kdim..(y0 + i + 1) * kdim + kdim],
            &a[(y0 + i + 2) * kdim..(y0 + i + 2) * kdim + kdim],
            &a[(y0 + i + 3) * kdim..(y0 + i + 3) * kdim + kdim],
        ];
        let mut j = 0;
        while j + NR <= cols {
            // MR × NR register tile: A scalars broadcast against one
            // contiguous B panel; `regs` and `brow` stay in registers
            // (the s-loops fully unroll).
            let mut regs = [[0.0f32; NR]; MR];
            for p in 0..kdim {
                let off = p * n + x0 + j;
                let brow: &[f32; NR] = b[off..off + NR].try_into().unwrap();
                for (regs_r, ar) in regs.iter_mut().zip(&ra) {
                    let av = ar[p];
                    for (reg, &bv) in regs_r.iter_mut().zip(brow) {
                        *reg += av * bv;
                    }
                }
            }
            for (r, regs_r) in regs.iter().enumerate() {
                acc[(i + r) * cols + j..(i + r) * cols + j + NR].copy_from_slice(regs_r);
            }
            j += NR;
        }
        // Column fringe of the 4-row band: one accumulator row segment
        // at a time, still ascending-k per element.
        if j < cols {
            for (r, ri) in ra.iter().enumerate() {
                let arow = &mut acc[(i + r) * cols + j..(i + r) * cols + cols];
                for (p, &av) in ri.iter().enumerate() {
                    let brow = &b[p * n + x0 + j..p * n + x0 + cols];
                    for (dst, &bv) in arow.iter_mut().zip(brow) {
                        *dst += av * bv;
                    }
                }
            }
        }
        i += MR;
    }
    // Row fringe (boundary tiles): one accumulator row at a time.
    while i < rows {
        let ri = &a[(y0 + i) * kdim..(y0 + i) * kdim + kdim];
        let arow = &mut acc[i * cols..(i + 1) * cols];
        for (p, &av) in ri.iter().enumerate() {
            let brow = &b[p * n + x0..p * n + x0 + cols];
            for (dst, &bv) in arow.iter_mut().zip(brow) {
                *dst += av * bv;
            }
        }
        i += 1;
    }
}

/// Execute a batch plan with the packed micro-kernel engine.
///
/// The output matrices start as clones of C and are split into disjoint
/// tile-row bands (`chunks_mut` of `by * n` elements). All bands across
/// all GEMMs form one flat job list executed in a single parallel pass;
/// each job accumulates its tiles in per-worker thread-local scratch and
/// writes `alpha * acc + beta * C` straight into its band — no
/// intermediate tile buffers and no serial scatter.
///
/// If a GEMM's tiles carry heterogeneous tiling ids (which
/// [`ctb_tiling::select_tiling`] never produces, but a hand-built plan
/// could), the banded partition is ill-defined and execution falls back
/// to [`execute_plan_unpacked`].
pub fn execute_plan(batch: &GemmBatch, plan: &BatchPlan) -> Vec<MatF32> {
    let ngemms = batch.shapes.len();

    // Per-GEMM strategy id; every tile of a GEMM must agree for the
    // band partition to be well defined.
    let mut sid: Vec<Option<u8>> = vec![None; ngemms];
    for t in 0..plan.num_tiles() {
        let g = plan.gemm[t];
        match sid[g] {
            None => sid[g] = Some(plan.tiling[t]),
            Some(s) if s != plan.tiling[t] => return execute_plan_unpacked(batch, plan),
            _ => {}
        }
    }

    // Bucket tiles per (GEMM, tile-row).
    let mut buckets: Vec<Vec<Vec<usize>>> = (0..ngemms)
        .map(|g| match sid[g] {
            Some(id) => {
                let by = TilingStrategy::from_id(id).by;
                vec![Vec::new(); batch.shapes[g].m.div_ceil(by)]
            }
            None => Vec::new(),
        })
        .collect();
    for t in 0..plan.num_tiles() {
        buckets[plan.gemm[t]][plan.y_coord[t]].push(t);
    }

    let mut out: Vec<MatF32> = batch.c.clone();

    // Flatten every (GEMM, band) pair into one job list.
    let mut jobs: Vec<BandJob<'_>> = Vec::new();
    for (g, mat) in out.iter_mut().enumerate() {
        let Some(id) = sid[g] else { continue };
        let strategy = TilingStrategy::from_id(id);
        let n = batch.shapes[g].n;
        for (ty, band) in mat.as_mut_slice().chunks_mut(strategy.by * n).enumerate() {
            let tiles = std::mem::take(&mut buckets[g][ty]);
            if tiles.is_empty() {
                continue;
            }
            jobs.push(BandJob { gemm: g, strategy, y0: ty * strategy.by, band, tiles });
        }
    }

    jobs.into_par_iter().for_each(|job| {
        let shape = batch.shapes[job.gemm];
        let a = batch.a[job.gemm].as_slice();
        let b = batch.b[job.gemm].as_slice();
        let (alpha, beta) = (batch.alpha, batch.beta);
        let st = job.strategy;
        TILE_ACC.with(|cell| {
            let mut acc = cell.borrow_mut();
            for &t in &job.tiles {
                let x0 = plan.x_coord[t] * st.bx;
                let y0 = job.y0;
                let rows = (shape.m - y0).min(st.by);
                let cols = (shape.n - x0).min(st.bx);
                acc.clear();
                acc.resize(rows * cols, 0.0);
                tile_kernel(a, b, shape.k, shape.n, y0, x0, rows, cols, &mut acc);
                // Epilogue folded into the accumulator pass: read the
                // original C from the band, write the result back in
                // place. Each element belongs to exactly one tile, so
                // nothing is read after it is written.
                for i in 0..rows {
                    let base = i * shape.n + x0;
                    let dst = &mut job.band[base..base + cols];
                    let src = &acc[i * cols..(i + 1) * cols];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d = alpha * s + beta * *d;
                    }
                }
            }
        });
    });

    out
}

// ---------------------------------------------------------------------------
// Unpacked baseline (the original interpreter)
// ---------------------------------------------------------------------------

/// One computed C tile, ready to scatter.
struct TileResult {
    gemm: usize,
    y0: usize,
    x0: usize,
    rows: usize,
    cols: usize,
    /// Row-major `rows × cols` values.
    data: Vec<f32>,
}

/// Execute the Fig 2 main loop for one tile, returning its C values.
fn run_tile(
    batch: &GemmBatch,
    gemm: usize,
    strategy: &TilingStrategy,
    ty: usize,
    tx: usize,
) -> TileResult {
    let shape = batch.shapes[gemm];
    let (a, b, c) = (&batch.a[gemm], &batch.b[gemm], &batch.c[gemm]);
    let y0 = ty * strategy.by;
    let x0 = tx * strategy.bx;
    let rows = (shape.m - y0).min(strategy.by);
    let cols = (shape.n - x0).min(strategy.bx);

    // reg_C accumulators for the whole tile (each simulated thread owns
    // a sub_y x sub_x sub-tile of this buffer).
    let mut acc = vec![0.0f32; rows * cols];
    let bk = strategy.bk;
    // Main loop along the K dimension, one BK chunk per iteration.
    let mut k0 = 0;
    while k0 < shape.k {
        let k1 = (k0 + bk).min(shape.k);
        for i in 0..rows {
            for p in k0..k1 {
                let av = a.get(y0 + i, p);
                let brow = &b.as_slice()[p * shape.n + x0..p * shape.n + x0 + cols];
                let arow = &mut acc[i * cols..(i + 1) * cols];
                for (dst, &bv) in arow.iter_mut().zip(brow) {
                    *dst += av * bv;
                }
            }
        }
        k0 = k1;
    }

    // Epilogue: C = alpha * acc + beta * C.
    let mut data = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            data[i * cols + j] = batch.alpha * acc[i * cols + j] + batch.beta * c.get(y0 + i, x0 + j);
        }
    }
    TileResult { gemm, y0, x0, rows, cols, data }
}

/// Execute a batch plan with the original collect-then-scatter
/// interpreter: every block computes its tiles into freshly allocated
/// buffers, then a serial pass scatters them into clones of C. Kept as
/// the A/B baseline for `reproduce perf` and the criterion benches.
pub fn execute_plan_unpacked(batch: &GemmBatch, plan: &BatchPlan) -> Vec<MatF32> {
    // The Fig 7 outer structure: parallel over thread blocks, serial
    // over the tiles of a block.
    let results: Vec<TileResult> = (0..plan.num_blocks())
        .into_par_iter()
        .flat_map_iter(|blk| {
            let begin = plan.tile[blk];
            let end = plan.tile[blk + 1];
            (begin..end).map(|t| {
                let gemm = plan.gemm[t];
                let strategy = TilingStrategy::from_id(plan.tiling[t]);
                run_tile(batch, gemm, &strategy, plan.y_coord[t], plan.x_coord[t])
            })
        })
        .collect();

    let mut out: Vec<MatF32> = batch.c.clone();
    for r in results {
        let n = out[r.gemm].cols();
        let buf = out[r.gemm].as_mut_slice();
        for i in 0..r.rows {
            let dst = &mut buf[(r.y0 + i) * n + r.x0..(r.y0 + i) * n + r.x0 + r.cols];
            dst.copy_from_slice(&r.data[i * r.cols..(i + 1) * r.cols]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_batching::{assign_blocks, tiles_for, BatchingHeuristic};
    use ctb_gpu_specs::Thresholds;
    use ctb_matrix::{assert_all_close, GemmShape};
    use ctb_tiling::select_tiling;

    fn run_case(shapes: &[GemmShape], heuristic: BatchingHeuristic, alpha: f32, beta: f32) {
        let th = Thresholds::paper_v100();
        let batch = GemmBatch::random(shapes, alpha, beta, 42);
        let sol = select_tiling(shapes, &th);
        let tiles = tiles_for(shapes, &sol);
        let blocks = assign_blocks(&tiles, heuristic, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        plan.validate(shapes, &sol).expect("valid plan");
        let got = execute_plan(&batch, &plan);
        let expect = batch.reference_result();
        assert_all_close(&expect, &got, 2e-4);
        // The packed engine must agree with the original interpreter
        // bitwise: both accumulate each element in ascending-k order and
        // apply the identical epilogue expression.
        let unpacked = execute_plan_unpacked(&batch, &plan);
        for (g, (p, u)) in got.iter().zip(&unpacked).enumerate() {
            assert_eq!(
                p.as_slice(),
                u.as_slice(),
                "packed and unpacked diverge on gemm {g}"
            );
        }
    }

    #[test]
    fn worked_example_computes_correct_results() {
        let shapes = [
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ];
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            run_case(&shapes, h, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_are_honoured() {
        run_case(&[GemmShape::new(48, 80, 96)], BatchingHeuristic::Threshold, 0.75, -1.5);
    }

    #[test]
    fn non_divisible_sizes_compute_boundary_tiles() {
        run_case(
            &[GemmShape::new(17, 33, 41), GemmShape::new(100, 50, 23)],
            BatchingHeuristic::Binary,
            1.0,
            1.0,
        );
    }

    #[test]
    fn random_variable_batches_match_reference() {
        use ctb_matrix::gen::random_case;
        // Keep it small: correctness, not throughput.
        let shapes: Vec<GemmShape> = random_case(3)
            .into_iter()
            .take(6)
            .map(|s| GemmShape::new(s.m.min(128), s.n.min(128), s.k.min(128)))
            .collect();
        run_case(&shapes, BatchingHeuristic::Threshold, 1.0, 0.5);
        run_case(&shapes, BatchingHeuristic::Binary, 1.0, 0.5);
    }
}

//! The functional persistent-threads interpreter — the Fig 7
//! programming interface.
//!
//! Each thread block walks its `[Tile[b], Tile[b+1])` range, parses the
//! GEMM and tile information from the auxiliary arrays, and executes the
//! Fig 2 main loop for that tile: accumulate over K in `BK` chunks, then
//! write back `alpha * acc + beta * C`. Blocks run in parallel on the
//! rayon pool — they own disjoint C tiles by construction (validated by
//! [`ctb_batching::BatchPlan::validate`]), mirroring the CUDA execution
//! model where each tile is produced by exactly one block.

use ctb_batching::BatchPlan;
use ctb_matrix::{GemmBatch, MatF32};
use ctb_tiling::TilingStrategy;
use rayon::prelude::*;

/// One computed C tile, ready to scatter.
struct TileResult {
    gemm: usize,
    y0: usize,
    x0: usize,
    rows: usize,
    cols: usize,
    /// Row-major `rows × cols` values.
    data: Vec<f32>,
}

/// Execute the Fig 2 main loop for one tile, returning its C values.
fn run_tile(
    batch: &GemmBatch,
    gemm: usize,
    strategy: &TilingStrategy,
    ty: usize,
    tx: usize,
) -> TileResult {
    let shape = batch.shapes[gemm];
    let (a, b, c) = (&batch.a[gemm], &batch.b[gemm], &batch.c[gemm]);
    let y0 = ty * strategy.by;
    let x0 = tx * strategy.bx;
    let rows = (shape.m - y0).min(strategy.by);
    let cols = (shape.n - x0).min(strategy.bx);

    // reg_C accumulators for the whole tile (each simulated thread owns
    // a sub_y x sub_x sub-tile of this buffer).
    let mut acc = vec![0.0f32; rows * cols];
    let bk = strategy.bk;
    // Main loop along the K dimension, one BK chunk per iteration.
    let mut k0 = 0;
    while k0 < shape.k {
        let k1 = (k0 + bk).min(shape.k);
        for i in 0..rows {
            for p in k0..k1 {
                let av = a.get(y0 + i, p);
                let brow = &b.as_slice()[p * shape.n + x0..p * shape.n + x0 + cols];
                let arow = &mut acc[i * cols..(i + 1) * cols];
                for (dst, &bv) in arow.iter_mut().zip(brow) {
                    *dst += av * bv;
                }
            }
        }
        k0 = k1;
    }

    // Epilogue: C = alpha * acc + beta * C.
    let mut data = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            data[i * cols + j] = batch.alpha * acc[i * cols + j] + batch.beta * c.get(y0 + i, x0 + j);
        }
    }
    TileResult { gemm, y0, x0, rows, cols, data }
}

/// Execute a batch plan functionally: every block processes its tiles
/// (Fig 7), and the computed tiles are scattered into fresh copies of
/// the C matrices.
pub fn execute_plan(batch: &GemmBatch, plan: &BatchPlan) -> Vec<MatF32> {
    // The Fig 7 outer structure: parallel over thread blocks, serial
    // over the tiles of a block.
    let results: Vec<TileResult> = (0..plan.num_blocks())
        .into_par_iter()
        .flat_map_iter(|blk| {
            let begin = plan.tile[blk];
            let end = plan.tile[blk + 1];
            (begin..end).map(|t| {
                let gemm = plan.gemm[t];
                let strategy = TilingStrategy::from_id(plan.tiling[t]);
                run_tile(batch, gemm, &strategy, plan.y_coord[t], plan.x_coord[t])
            })
        })
        .collect();

    let mut out: Vec<MatF32> = batch.c.clone();
    for r in results {
        let n = out[r.gemm].cols();
        let buf = out[r.gemm].as_mut_slice();
        for i in 0..r.rows {
            let dst = &mut buf[(r.y0 + i) * n + r.x0..(r.y0 + i) * n + r.x0 + r.cols];
            dst.copy_from_slice(&r.data[i * r.cols..(i + 1) * r.cols]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_batching::{assign_blocks, tiles_for, BatchingHeuristic};
    use ctb_gpu_specs::Thresholds;
    use ctb_matrix::{assert_all_close, GemmShape};
    use ctb_tiling::select_tiling;

    fn run_case(shapes: &[GemmShape], heuristic: BatchingHeuristic, alpha: f32, beta: f32) {
        let th = Thresholds::paper_v100();
        let batch = GemmBatch::random(shapes, alpha, beta, 42);
        let sol = select_tiling(shapes, &th);
        let tiles = tiles_for(shapes, &sol);
        let blocks = assign_blocks(&tiles, heuristic, &th, sol.thread_count.threads());
        let plan = BatchPlan::from_blocks(&blocks, sol.thread_count.threads());
        plan.validate(shapes, &sol).expect("valid plan");
        let got = execute_plan(&batch, &plan);
        let expect = batch.reference_result();
        assert_all_close(&expect, &got, 2e-4);
    }

    #[test]
    fn worked_example_computes_correct_results() {
        let shapes = [
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ];
        for h in [
            BatchingHeuristic::OneTilePerBlock,
            BatchingHeuristic::Threshold,
            BatchingHeuristic::Binary,
        ] {
            run_case(&shapes, h, 1.0, 0.0);
        }
    }

    #[test]
    fn alpha_beta_are_honoured() {
        run_case(&[GemmShape::new(48, 80, 96)], BatchingHeuristic::Threshold, 0.75, -1.5);
    }

    #[test]
    fn non_divisible_sizes_compute_boundary_tiles() {
        run_case(
            &[GemmShape::new(17, 33, 41), GemmShape::new(100, 50, 23)],
            BatchingHeuristic::Binary,
            1.0,
            1.0,
        );
    }

    #[test]
    fn random_variable_batches_match_reference() {
        use ctb_matrix::gen::random_case;
        // Keep it small: correctness, not throughput.
        let shapes: Vec<GemmShape> = random_case(3)
            .into_iter()
            .take(6)
            .map(|s| GemmShape::new(s.m.min(128), s.n.min(128), s.k.min(128)))
            .collect();
        run_case(&shapes, BatchingHeuristic::Threshold, 1.0, 0.5);
        run_case(&shapes, BatchingHeuristic::Binary, 1.0, 0.5);
    }
}

//! Regenerate the bundled pretrained selector artifact.
//!
//! ```text
//! cargo run -p ctb-core --release --example regen_selector
//! ```
//!
//! Retrains the online selector on the standard corpus against the
//! V100 model and rewrites `crates/core/data/selector_v100.forest`.
//! Run this whenever the training routine, the workload generators, or
//! the RNG stream changes; `pretrained_artifact_loads_and_agrees_with_fresh_training`
//! guards that the artifact stays in sync.

use ctb_core::OnlineSelector;
use ctb_gpu_specs::{ArchSpec, Thresholds};

fn main() {
    let arch = ArchSpec::volta_v100();
    let th = Thresholds::for_arch(&arch);
    let selector = OnlineSelector::train_default(&arch, &th);
    let text = ctb_forest::codec::encode(selector.forest());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/selector_v100.forest");
    std::fs::write(path, &text).expect("write artifact");
    println!("wrote {path} ({} bytes)", text.len());
}

//! The tiling-strategy selection algorithm of §4.2.3.
//!
//! The algorithm trades thread-level parallelism for instruction-level
//! parallelism: starting from the smallest available strategy per GEMM
//! (maximal TLP), it repeatedly enlarges every GEMM's tile while the
//! aggregate TLP (Eq 1) still exceeds an architecture-dependent
//! threshold. Two exceptions from the paper are implemented verbatim:
//!
//! 1. a GEMM whose queue has a single remaining strategy keeps it
//!    (`top` instead of `pop`), so every GEMM always has a strategy;
//! 2. if *all* queues are exhausted while TLP is still above the
//!    threshold, the algorithm restarts with the 128-thread versions,
//!    trading further TLP for per-thread work.

use crate::model::tlp;
use crate::strategy::{batched, StrategyKind, ThreadCount, TilingStrategy};
use ctb_gpu_specs::Thresholds;
use ctb_matrix::GemmShape;
use serde::{Deserialize, Serialize};

/// The tiling engine's output: one strategy per GEMM, all sharing the
/// same thread-block size (the unified thread structure of §4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilingSolution {
    /// The unified thread count (128 or 256) shared by every block.
    pub thread_count: ThreadCount,
    /// Strategy chosen for each GEMM, parallel to the input shapes.
    pub per_gemm: Vec<TilingStrategy>,
    /// Aggregate TLP (Eq 1) of the final solution.
    pub tlp: u64,
}

/// Availability rule of §4.2.3 step 1: the Table 2 strategies (of one
/// thread-count version) whose tile fits the GEMM, smallest first.
/// Falls back to `small` when nothing fits (e.g. `M < 16`), so every
/// GEMM always has at least one strategy.
fn available(shape: &GemmShape, tc: ThreadCount) -> Vec<TilingStrategy> {
    let mut q: Vec<TilingStrategy> = StrategyKind::ALL
        .iter()
        .map(|&k| batched(k, tc))
        .filter(|st| st.fits(shape.m, shape.n))
        .collect();
    if q.is_empty() {
        q.push(batched(StrategyKind::Small, tc));
    }
    q
}

/// Run one pass of steps 2–3 for a fixed thread-count version.
///
/// Returns `Ok(solution)` once TLP drops to (or below) the threshold, or
/// `Err(solution_at_exhaustion)` when every queue is down to one entry
/// while TLP is still above the threshold.
fn select_pass(
    shapes: &[GemmShape],
    tc: ThreadCount,
    threshold: u64,
) -> Result<TilingSolution, TilingSolution> {
    let queues: Vec<Vec<TilingStrategy>> = shapes.iter().map(|s| available(s, tc)).collect();
    // Index of the current strategy within each queue; step 2's first
    // "pop" yields the front element.
    let mut idx = vec![0usize; shapes.len()];

    loop {
        let current: Vec<TilingStrategy> =
            queues.iter().zip(&idx).map(|(q, &i)| q[i]).collect();
        let current_tlp = tlp(shapes, &current);
        if current_tlp <= threshold {
            return Ok(TilingSolution { thread_count: tc, per_gemm: current, tlp: current_tlp });
        }
        // Step 3: TLP is above the threshold — advance every queue that
        // still has more than one remaining strategy (exception 1).
        let mut advanced = false;
        for (i, q) in queues.iter().enumerate() {
            if idx[i] + 1 < q.len() {
                idx[i] += 1;
                advanced = true;
            }
        }
        if !advanced {
            // Exception 2: all queues exhausted, TLP still too high.
            return Err(TilingSolution { thread_count: tc, per_gemm: current, tlp: current_tlp });
        }
    }
}

/// §4.2.3 — select a tiling strategy for every GEMM in the batch.
///
/// ```
/// use ctb_gpu_specs::Thresholds;
/// use ctb_matrix::GemmShape;
/// use ctb_tiling::{select_tiling, StrategyKind};
///
/// // The paper's worked example.
/// let shapes = [
///     GemmShape::new(16, 32, 128),
///     GemmShape::new(64, 64, 64),
///     GemmShape::new(256, 256, 64),
/// ];
/// let solution = select_tiling(&shapes, &Thresholds::paper_v100());
/// assert_eq!(solution.tlp, 17_920);
/// assert_eq!(solution.per_gemm[0].kind, StrategyKind::Small);
/// ```
///
/// Starts with the 256-thread versions (more TLP); switches to the
/// 128-thread versions when the 256-thread queues are exhausted with TLP
/// still above `thresholds.tlp_threshold`. If the 128-thread pass also
/// exhausts, the largest 128-thread solution is returned — the GEMMs are
/// big enough that ILP is the only thing left to optimise.
pub fn select_tiling(shapes: &[GemmShape], thresholds: &Thresholds) -> TilingSolution {
    assert!(!shapes.is_empty(), "empty batch");
    match select_pass(shapes, ThreadCount::T256, thresholds.tlp_threshold) {
        Ok(sol) => sol,
        Err(_) => match select_pass(shapes, ThreadCount::T128, thresholds.tlp_threshold) {
            Ok(sol) => sol,
            Err(sol) => sol,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_thresholds() -> Thresholds {
        Thresholds::paper_v100()
    }

    #[test]
    fn worked_example_matches_paper() {
        // §4.2.3: GEMMs 16x32x128, 64x64x64, 256x256x64 on V100.
        // First solution (small, small, small) has TLP 70144 > 65536;
        // second (small, medium, medium) has TLP 17920 and is accepted.
        let shapes = [
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ];
        // Reproduce the paper's intermediate TLP numbers.
        let small = batched(StrategyKind::Small, ThreadCount::T256);
        let medium = batched(StrategyKind::Medium, ThreadCount::T256);
        assert_eq!(tlp(&shapes, &[small, small, small]), 70_144);
        assert_eq!(tlp(&shapes, &[small, medium, medium]), 17_920);

        let sol = select_tiling(&shapes, &v100_thresholds());
        assert_eq!(sol.thread_count, ThreadCount::T256);
        assert_eq!(
            sol.per_gemm.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![StrategyKind::Small, StrategyKind::Medium, StrategyKind::Medium]
        );
        assert_eq!(sol.tlp, 17_920);
    }

    #[test]
    fn availability_follows_stated_rule() {
        // Paper's stated rule is BY <= M and BX <= N (see DESIGN.md §6
        // for the worked-example discrepancy).
        let a = available(&GemmShape::new(16, 32, 128), ThreadCount::T256);
        assert_eq!(a.iter().map(|s| s.kind).collect::<Vec<_>>(), vec![StrategyKind::Small]);

        let a = available(&GemmShape::new(64, 64, 64), ThreadCount::T256);
        assert_eq!(
            a.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![StrategyKind::Small, StrategyKind::Medium, StrategyKind::Large]
        );

        let a = available(&GemmShape::new(256, 256, 64), ThreadCount::T256);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn tiny_gemm_falls_back_to_small() {
        let a = available(&GemmShape::new(8, 8, 8), ThreadCount::T256);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, StrategyKind::Small);
        // And the full algorithm still returns a solution.
        let sol = select_tiling(&[GemmShape::new(8, 8, 8)], &v100_thresholds());
        assert_eq!(sol.per_gemm[0].kind, StrategyKind::Small);
    }

    #[test]
    fn low_tlp_batch_keeps_smallest_tiles() {
        // A handful of small GEMMs can never exceed the threshold, so
        // the smallest (max-TLP) solution is selected immediately.
        let shapes = vec![GemmShape::new(64, 64, 64); 4];
        let sol = select_tiling(&shapes, &v100_thresholds());
        assert!(sol.per_gemm.iter().all(|s| s.kind == StrategyKind::Small));
        assert_eq!(sol.thread_count, ThreadCount::T256);
    }

    #[test]
    fn huge_batch_falls_through_to_128_threads() {
        // Many big GEMMs: even all-huge 256-thread tiling keeps TLP above
        // the threshold, so the algorithm switches to 128-thread
        // versions (exception 2).
        let shapes = vec![GemmShape::new(2048, 2048, 64); 16];
        let sol = select_tiling(&shapes, &v100_thresholds());
        assert_eq!(sol.thread_count, ThreadCount::T128);
        // With tiles so plentiful the 128-pass also exhausts at huge.
        assert!(sol.per_gemm.iter().all(|s| s.kind == StrategyKind::Huge));
    }

    #[test]
    fn solution_always_fits_or_is_small_fallback() {
        use ctb_matrix::gen::random_case;
        for seed in 0..40 {
            let shapes = random_case(seed);
            let sol = select_tiling(&shapes, &v100_thresholds());
            assert_eq!(sol.per_gemm.len(), shapes.len());
            for (sh, st) in shapes.iter().zip(&sol.per_gemm) {
                assert!(
                    st.fits(sh.m, sh.n) || st.kind == StrategyKind::Small,
                    "{st} does not fit {sh}"
                );
                assert_eq!(st.threads, sol.thread_count.threads());
            }
        }
    }

    #[test]
    fn tlp_of_solution_is_reported_consistently() {
        let shapes = vec![GemmShape::new(128, 128, 128); 8];
        let sol = select_tiling(&shapes, &v100_thresholds());
        assert_eq!(sol.tlp, tlp(&shapes, &sol.per_gemm));
    }
}

//! Single-GEMM strategy selection (Table 1) used by the baselines.
//!
//! The `default` and `cke` baselines launch one classic kernel per GEMM;
//! MAGMA `vbatch` uses one uniform strategy for the whole batch. Both
//! need the conventional single-GEMM heuristic: pick the largest tile
//! (best data reuse) that still produces enough tiles to occupy the
//! device — the trade-off described in §2.2 and §4.

use crate::strategy::{TilingStrategy, SINGLE_GEMM_STRATEGIES};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;

/// Choose a Table 1 strategy for a lone `shape` on `arch`.
///
/// Among the strategies that fit (`BY ≤ M`, `BX ≤ N`; smallest as a
/// fallback), prefer the largest one that still yields at least one tile
/// per SM; if none reaches that, take the strategy with the most tiles
/// (maximum TLP), breaking ties toward the larger tile.
pub fn select_single_gemm(shape: &GemmShape, arch: &ArchSpec) -> TilingStrategy {
    let fitting: Vec<TilingStrategy> = SINGLE_GEMM_STRATEGIES
        .iter()
        .copied()
        .filter(|st| st.fits(shape.m, shape.n))
        .collect();
    let candidates = if fitting.is_empty() { vec![SINGLE_GEMM_STRATEGIES[0]] } else { fitting };

    let wanted_tiles = arch.sms as usize;
    // Largest (iterate from the back: tables are ordered small -> huge)
    // that still fills the device.
    if let Some(st) = candidates
        .iter()
        .rev()
        .find(|st| st.tiles(shape.m, shape.n) >= wanted_tiles)
    {
        return *st;
    }
    // Otherwise maximise tile count; prefer the larger tile on ties
    // (same TLP, better reuse).
    *candidates
        .iter()
        .enumerate()
        .max_by_key(|(i, st)| (st.tiles(shape.m, shape.n), *i))
        .map(|(_, st)| st)
        .expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyKind;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    #[test]
    fn huge_matrices_get_huge_tiles() {
        // 5120^3 (the paper's near-peak case): 40x40 huge tiles = 1600
        // blocks >> 80 SMs.
        let st = select_single_gemm(&GemmShape::new(5120, 5120, 5120), &v100());
        assert_eq!(st.kind, StrategyKind::Huge);
    }

    #[test]
    fn mid_size_balances_tlp() {
        // 1024^2: huge gives 64 tiles < 80 SMs (the paper's §4.2 example
        // of why huge is wrong here); the heuristic must pick something
        // smaller.
        let st = select_single_gemm(&GemmShape::new(1024, 1024, 1024), &v100());
        assert!(st.kind < StrategyKind::Huge, "picked {st}");
        assert!(st.tiles(1024, 1024) >= 80);
    }

    #[test]
    fn small_gemm_gets_small_tile() {
        // The inception3a/5x5reduce motivating case: 16x784x192.
        let st = select_single_gemm(&GemmShape::new(16, 784, 192), &v100());
        assert_eq!(st.kind, StrategyKind::Small, "M = 16 only fits small, got {st}");
    }

    #[test]
    fn tiny_gemm_falls_back() {
        let st = select_single_gemm(&GemmShape::new(4, 4, 4), &v100());
        assert_eq!(st.kind, StrategyKind::Small);
    }

    #[test]
    fn selection_always_fits_or_small() {
        use ctb_matrix::gen::random_case;
        for seed in 0..30 {
            for sh in random_case(seed) {
                let st = select_single_gemm(&sh, &v100());
                assert!(st.fits(sh.m, sh.n) || st.kind == StrategyKind::Small);
            }
        }
    }
}

//! The paper's **tiling engine** (§4): tiling strategies, the
//! parallelism / single-thread-performance models (Eqs 1–4), and the
//! three-step tiling-strategy selection algorithm (§4.2.3).
//!
//! Two strategy tables are provided:
//! * [`strategy::SINGLE_GEMM_STRATEGIES`] — Table 1, classic strategies
//!   for a lone GEMM (each with its own thread-block size);
//! * [`strategy::BATCHED_STRATEGIES`] — Table 2, the paper's unified
//!   thread structure: every strategy comes in a 128-thread and a
//!   256-thread version so that *all* tiles in a batched kernel can share
//!   one block size without idling threads.

pub mod model;
pub mod select;
pub mod single;
pub mod strategy;
pub mod trace;

pub use model::{arithmetic_intensity, num_fma, num_load, tlp};
pub use select::{select_tiling, TilingSolution};
pub use single::select_single_gemm;
pub use trace::{select_tiling_traced, SelectionTrace, TraceRound};
pub use strategy::{StrategyKind, ThreadCount, TilingStrategy};

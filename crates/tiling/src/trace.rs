//! Traced tiling selection: the same §4.2.3 algorithm as
//! [`crate::select::select_tiling`], additionally recording every round
//! of the TLP walk so tools (and tests) can explain *why* a strategy was
//! chosen. The paper's worked example is literally one of these traces.

use crate::model::tlp;
use crate::select::TilingSolution;
use crate::strategy::{batched, StrategyKind, ThreadCount, TilingStrategy};
use ctb_gpu_specs::Thresholds;
use ctb_matrix::GemmShape;
use serde::{Deserialize, Serialize};

/// One round of the selection walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRound {
    /// Thread-count version this round ran under.
    pub thread_count: ThreadCount,
    /// The candidate solution (strategy kind per GEMM).
    pub kinds: Vec<StrategyKind>,
    /// Its aggregate TLP (Eq 1).
    pub tlp: u64,
    /// Whether this round was accepted (TLP ≤ threshold).
    pub accepted: bool,
}

/// A full selection trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionTrace {
    pub threshold: u64,
    pub rounds: Vec<TraceRound>,
    /// Index of the accepted round (always the last one).
    pub chosen: usize,
}

impl SelectionTrace {
    /// Human-readable rendering of the walk (the §4.2.3 narrative).
    pub fn render(&self, shapes: &[GemmShape]) -> String {
        let mut out = format!(
            "GEMMs: {}  (TLP threshold {})\n",
            shapes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", "),
            self.threshold
        );
        for (i, r) in self.rounds.iter().enumerate() {
            let kinds: Vec<String> = r.kinds.iter().map(|k| k.to_string()).collect();
            out.push_str(&format!(
                "round {} [{}T]: ({})  TLP = {}  -> {}\n",
                i + 1,
                r.thread_count.threads(),
                kinds.join(", "),
                r.tlp,
                if r.accepted {
                    "accept"
                } else if r.tlp > self.threshold {
                    "above threshold, enlarge tiles"
                } else {
                    "exhausted"
                }
            ));
        }
        out
    }
}

fn available(shape: &GemmShape, tc: ThreadCount) -> Vec<TilingStrategy> {
    let mut q: Vec<TilingStrategy> = StrategyKind::ALL
        .iter()
        .map(|&k| batched(k, tc))
        .filter(|st| st.fits(shape.m, shape.n))
        .collect();
    if q.is_empty() {
        q.push(batched(StrategyKind::Small, tc));
    }
    q
}

fn traced_pass(
    shapes: &[GemmShape],
    tc: ThreadCount,
    threshold: u64,
    rounds: &mut Vec<TraceRound>,
) -> Option<TilingSolution> {
    let queues: Vec<Vec<TilingStrategy>> = shapes.iter().map(|s| available(s, tc)).collect();
    let mut idx = vec![0usize; shapes.len()];
    loop {
        let current: Vec<TilingStrategy> = queues.iter().zip(&idx).map(|(q, &i)| q[i]).collect();
        let current_tlp = tlp(shapes, &current);
        let accepted = current_tlp <= threshold;
        rounds.push(TraceRound {
            thread_count: tc,
            kinds: current.iter().map(|s| s.kind).collect(),
            tlp: current_tlp,
            accepted,
        });
        if accepted {
            return Some(TilingSolution { thread_count: tc, per_gemm: current, tlp: current_tlp });
        }
        let mut advanced = false;
        for (i, q) in queues.iter().enumerate() {
            if idx[i] + 1 < q.len() {
                idx[i] += 1;
                advanced = true;
            }
        }
        if !advanced {
            return None;
        }
    }
}

/// Run the §4.2.3 selection while recording the full walk. The returned
/// solution is identical to [`crate::select::select_tiling`]'s.
pub fn select_tiling_traced(
    shapes: &[GemmShape],
    thresholds: &Thresholds,
) -> (TilingSolution, SelectionTrace) {
    assert!(!shapes.is_empty(), "empty batch");
    let mut rounds = Vec::new();
    let solution = traced_pass(shapes, ThreadCount::T256, thresholds.tlp_threshold, &mut rounds)
        .or_else(|| traced_pass(shapes, ThreadCount::T128, thresholds.tlp_threshold, &mut rounds))
        .unwrap_or_else(|| {
            // Both versions exhausted: keep the last 128-thread round.
            let last = rounds.last().expect("at least one round");
            let per_gemm: Vec<TilingStrategy> =
                last.kinds.iter().map(|&k| batched(k, ThreadCount::T128)).collect();
            TilingSolution { thread_count: ThreadCount::T128, per_gemm, tlp: last.tlp }
        });
    let chosen = rounds.len() - 1;
    let trace = SelectionTrace { threshold: thresholds.tlp_threshold, rounds, chosen };
    (solution, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_tiling;

    fn worked_example() -> Vec<GemmShape> {
        vec![
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 64, 64),
            GemmShape::new(256, 256, 64),
        ]
    }

    #[test]
    fn trace_matches_the_paper_narrative() {
        let (sol, trace) = select_tiling_traced(&worked_example(), &Thresholds::paper_v100());
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.rounds[0].tlp, 70_144);
        assert!(!trace.rounds[0].accepted);
        assert_eq!(trace.rounds[1].tlp, 17_920);
        assert!(trace.rounds[1].accepted);
        assert_eq!(sol.tlp, 17_920);
        let text = trace.render(&worked_example());
        assert!(text.contains("70144") && text.contains("17920"), "{text}");
        assert!(text.contains("accept"));
    }

    #[test]
    fn traced_solution_equals_untraced_everywhere() {
        let th = Thresholds::paper_v100();
        for seed in 0..30u64 {
            let shapes = ctb_matrix::gen::random_case(seed);
            let (traced, trace) = select_tiling_traced(&shapes, &th);
            let plain = select_tiling(&shapes, &th);
            assert_eq!(traced, plain, "seed {seed}");
            // Exactly the final round is flagged accepted (or none when
            // both passes exhausted).
            let accepted: Vec<usize> = trace
                .rounds
                .iter()
                .enumerate()
                .filter(|(_, r)| r.accepted)
                .map(|(i, _)| i)
                .collect();
            assert!(accepted.len() <= 1);
            if let Some(&i) = accepted.first() {
                assert_eq!(i, trace.chosen);
            }
        }
    }

    #[test]
    fn exhaustion_falls_back_to_128_thread_huge() {
        let shapes = vec![GemmShape::new(2048, 2048, 64); 16];
        let (sol, trace) = select_tiling_traced(&shapes, &Thresholds::paper_v100());
        assert_eq!(sol, select_tiling(&shapes, &Thresholds::paper_v100()));
        // The walk visits both thread versions.
        assert!(trace.rounds.iter().any(|r| r.thread_count == ThreadCount::T256));
        assert!(trace.rounds.iter().any(|r| r.thread_count == ThreadCount::T128));
        assert!(trace.rounds.iter().all(|r| !r.accepted));
    }
}

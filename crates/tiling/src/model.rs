//! The analytical models of §4.2: thread-level parallelism (Eq 1) and
//! single-thread performance / arithmetic intensity (Eqs 2–4).

use crate::strategy::TilingStrategy;
use ctb_matrix::GemmShape;

/// Eq 1 — total thread-level parallelism of a tiling solution: the
/// number of threads across all tiles of all GEMMs.
///
/// `TLP = Σ_i ceil(M_i/BY_i)·ceil(N_i/BX_i) · T`
///
/// The paper writes the exact quotient `M·N/(BY·BX)`; we use ceiling
/// division so that non-divisible sizes are counted like real grids.
/// For the paper's worked example every division is exact, so the
/// published numbers (70144, 17920) are reproduced bit-for-bit — see the
/// `worked_example` test in [`crate::select`].
pub fn tlp(shapes: &[GemmShape], strategies: &[TilingStrategy]) -> u64 {
    assert_eq!(shapes.len(), strategies.len(), "one strategy per GEMM");
    shapes
        .iter()
        .zip(strategies)
        .map(|(s, st)| st.tiles(s.m, s.n) as u64 * st.threads as u64)
        .sum()
}

/// Eq 2 — global-memory load instructions per thread per main-loop
/// iteration: `(BY·BK + BK·BX) / (Load_width · T)` with 16-byte
/// (4-float) vector loads.
pub fn num_load(st: &TilingStrategy) -> f64 {
    const LOAD_WIDTH: f64 = 4.0;
    (st.by * st.bk + st.bk * st.bx) as f64 / (LOAD_WIDTH * st.threads as f64)
}

/// Eq 3 — FMA instructions per thread per main-loop iteration:
/// `BY·BX·BK / T`.
pub fn num_fma(st: &TilingStrategy) -> f64 {
    (st.by * st.bx * st.bk) as f64 / st.threads as f64
}

/// Eq 4 — arithmetic intensity, the FMA-to-load ratio:
/// `4·BY·BX / (BY + BX)`. Larger is better at hiding memory latency.
pub fn arithmetic_intensity(st: &TilingStrategy) -> f64 {
    4.0 * (st.by * st.bx) as f64 / (st.by + st.bx) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{batched, StrategyKind, ThreadCount};

    #[test]
    fn eq4_is_eq3_over_eq2() {
        // The paper derives Eq 4 as Num_FMA / Num_Load; the closed form
        // must agree with the quotient for every Table 2 strategy.
        for st in crate::strategy::batched_strategies() {
            let ratio = num_fma(&st) / num_load(&st);
            assert!(
                (ratio - arithmetic_intensity(&st)).abs() < 1e-9,
                "Eq4 mismatch for {st}"
            );
        }
    }

    #[test]
    fn intensity_grows_with_tile_size() {
        let t256 = ThreadCount::T256;
        let ai: Vec<f64> = [StrategyKind::Small, StrategyKind::Medium, StrategyKind::Large, StrategyKind::Huge]
            .iter()
            .map(|&k| arithmetic_intensity(&batched(k, t256)))
            .collect();
        assert!(ai.windows(2).all(|w| w[1] > w[0]), "AI not monotone: {ai:?}");
    }

    #[test]
    fn eq1_matches_hand_computation() {
        let shapes = [GemmShape::new(64, 64, 32)];
        let small = batched(StrategyKind::Small, ThreadCount::T256);
        // 4x4 tiles * 256 threads.
        assert_eq!(tlp(&shapes, &[small]), 16 * 256);
        let large = batched(StrategyKind::Large, ThreadCount::T256);
        assert_eq!(tlp(&shapes, &[large]), 256);
    }

    #[test]
    fn eq2_paper_example() {
        // Table 1 small (16x16x8, T=32): (16*8 + 8*16) / (4*32) = 2.
        let small_t1 = crate::strategy::SINGLE_GEMM_STRATEGIES[0];
        assert!((num_load(&small_t1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eq3_counts_sub_tile_work() {
        // huge/256: 128*128*8/256 = 512 FMA per thread per iteration.
        let huge = batched(StrategyKind::Huge, ThreadCount::T256);
        assert!((num_fma(&huge) - 512.0).abs() < 1e-12);
    }

    #[test]
    fn tlp_uses_ceiling_grids() {
        let shapes = [GemmShape::new(17, 17, 8)];
        let small = batched(StrategyKind::Small, ThreadCount::T128);
        // ceil(17/16)^2 = 4 tiles.
        assert_eq!(tlp(&shapes, &[small]), 4 * 128);
    }
}

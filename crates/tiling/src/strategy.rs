//! Tiling strategies: Table 1 (single GEMM) and Table 2 (batched GEMM).
//!
//! A strategy fixes the C-tile size `BY × BX`, the K-chunk `BK` processed
//! per main-loop iteration (Fig 2), the thread count `T` of the block,
//! and the per-thread sub-tile `sub_y × sub_x` (Fig 5). The invariant
//! `BY·BX = T·sub_y·sub_x` holds for every entry — each thread owns
//! exactly one sub-tile of C.

use ctb_gpu_specs::BlockFootprint;
use serde::{Deserialize, Serialize};

/// The six strategy families of Tables 1 and 2, from small to huge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    Small,
    Medium,
    Large,
    Tall,
    Wide,
    Huge,
}

impl StrategyKind {
    /// All kinds, smallest first (the priority-queue order of §4.2.3).
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::Small,
        StrategyKind::Medium,
        StrategyKind::Large,
        StrategyKind::Tall,
        StrategyKind::Wide,
        StrategyKind::Huge,
    ];

    /// Index in [`Self::ALL`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StrategyKind::Small => "small",
            StrategyKind::Medium => "medium",
            StrategyKind::Large => "large",
            StrategyKind::Tall => "tall",
            StrategyKind::Wide => "wide",
            StrategyKind::Huge => "huge",
        };
        write!(f, "{s}")
    }
}

/// The unified thread-block sizes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ThreadCount {
    T128,
    T256,
}

impl ThreadCount {
    pub fn threads(self) -> u32 {
        match self {
            ThreadCount::T128 => 128,
            ThreadCount::T256 => 256,
        }
    }
}

/// One tiling strategy: the unit the tiling engine selects per GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TilingStrategy {
    pub kind: StrategyKind,
    /// C-tile rows (`BY`).
    pub by: usize,
    /// C-tile columns (`BX`).
    pub bx: usize,
    /// K-chunk per main-loop iteration (`BK`, fixed to 8 in the paper).
    pub bk: usize,
    /// Threads per block.
    pub threads: u32,
    /// Per-thread sub-tile rows.
    pub sub_y: usize,
    /// Per-thread sub-tile columns.
    pub sub_x: usize,
}

impl TilingStrategy {
    const fn new(
        kind: StrategyKind,
        by: usize,
        bx: usize,
        threads: u32,
        sub_y: usize,
        sub_x: usize,
    ) -> Self {
        TilingStrategy { kind, by, bx, bk: 8, threads, sub_y, sub_x }
    }

    /// Number of C tiles for an `m × n` output under this strategy
    /// (partial boundary tiles count — `ceil` division).
    pub fn tiles(&self, m: usize, n: usize) -> usize {
        m.div_ceil(self.by) * n.div_ceil(self.bx)
    }

    /// Estimated registers per thread: the C sub-tile accumulators, the
    /// double-buffered A/B register fragments (Fig 2 lines 2–4) and a
    /// fixed allowance for addresses, loop counters and the software
    /// pipeline (~32 registers in real tuned SGEMM kernels).
    pub fn regs_per_thread(&self) -> u32 {
        (self.sub_y * self.sub_x + 2 * (self.sub_y + self.sub_x) + 32) as u32
    }

    /// Shared memory per block in bytes: double-buffered A and B tiles
    /// (Fig 2 lines 6–7), 4 bytes per f32.
    pub fn smem_bytes(&self) -> u32 {
        (2 * (self.by * self.bk + self.bk * self.bx) * 4) as u32
    }

    /// Resource footprint for the occupancy calculator.
    pub fn footprint(&self) -> BlockFootprint {
        BlockFootprint::new(self.threads, self.regs_per_thread(), self.smem_bytes())
    }

    /// Paper encoding of Table 2 strategies as 0‥=11 ("Tiling strategy"
    /// auxiliary array, Fig 6): 0–5 are the 128-thread versions
    /// small→huge, 6–11 the 256-thread versions.
    pub fn id(&self) -> u8 {
        let base = self.kind.index() as u8;
        match self.threads {
            128 => base,
            256 => base + 6,
            _ => panic!("id() is only defined for Table 2 strategies"),
        }
    }

    /// Inverse of [`Self::id`].
    pub fn from_id(id: u8) -> TilingStrategy {
        assert!(id < 12, "strategy id out of range");
        let tc = if id < 6 { ThreadCount::T128 } else { ThreadCount::T256 };
        batched(StrategyKind::ALL[(id % 6) as usize], tc)
    }

    /// True when a tile of this strategy fits the availability rule of
    /// §4.2.3 step 1: `BY ≤ M` and `BX ≤ N`.
    pub fn fits(&self, m: usize, n: usize) -> bool {
        self.by <= m && self.bx <= n
    }
}

impl std::fmt::Display for TilingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}x{}x{}/T{}]", self.kind, self.by, self.bx, self.bk, self.threads)
    }
}

/// Table 1: tiling strategies for the single-GEMM scenario. Each entry
/// carries its own block size — the source of the idle-thread problem
/// when mixed in a batched kernel (Fig 3b).
pub const SINGLE_GEMM_STRATEGIES: [TilingStrategy; 6] = [
    TilingStrategy::new(StrategyKind::Small, 16, 16, 32, 4, 2),
    TilingStrategy::new(StrategyKind::Medium, 32, 32, 64, 4, 4),
    TilingStrategy::new(StrategyKind::Large, 64, 64, 64, 8, 8),
    TilingStrategy::new(StrategyKind::Tall, 128, 64, 128, 8, 8),
    TilingStrategy::new(StrategyKind::Wide, 64, 128, 128, 8, 8),
    TilingStrategy::new(StrategyKind::Huge, 128, 128, 256, 8, 8),
];

/// Table 2, 128-thread versions: unified thread structure for batched
/// GEMM.
pub const BATCHED_STRATEGIES_128: [TilingStrategy; 6] = [
    TilingStrategy::new(StrategyKind::Small, 16, 16, 128, 2, 1),
    TilingStrategy::new(StrategyKind::Medium, 32, 32, 128, 4, 2),
    TilingStrategy::new(StrategyKind::Large, 64, 64, 128, 8, 4),
    TilingStrategy::new(StrategyKind::Tall, 128, 64, 128, 8, 8),
    TilingStrategy::new(StrategyKind::Wide, 64, 128, 128, 8, 8),
    TilingStrategy::new(StrategyKind::Huge, 128, 128, 128, 16, 8),
];

/// Table 2, 256-thread versions.
pub const BATCHED_STRATEGIES_256: [TilingStrategy; 6] = [
    TilingStrategy::new(StrategyKind::Small, 16, 16, 256, 1, 1),
    TilingStrategy::new(StrategyKind::Medium, 32, 32, 256, 2, 2),
    TilingStrategy::new(StrategyKind::Large, 64, 64, 256, 4, 4),
    TilingStrategy::new(StrategyKind::Tall, 128, 64, 256, 8, 4),
    TilingStrategy::new(StrategyKind::Wide, 64, 128, 256, 8, 4),
    TilingStrategy::new(StrategyKind::Huge, 128, 128, 256, 8, 8),
];

/// All 12 Table 2 strategies in `id()` order.
pub fn batched_strategies() -> [TilingStrategy; 12] {
    let mut out = [BATCHED_STRATEGIES_128[0]; 12];
    out[..6].copy_from_slice(&BATCHED_STRATEGIES_128);
    out[6..].copy_from_slice(&BATCHED_STRATEGIES_256);
    out
}

/// The Table 2 strategy of the given kind and thread count.
pub fn batched(kind: StrategyKind, tc: ThreadCount) -> TilingStrategy {
    let table = match tc {
        ThreadCount::T128 => &BATCHED_STRATEGIES_128,
        ThreadCount::T256 => &BATCHED_STRATEGIES_256,
    };
    table[kind.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_thread_table_1_wait_one_tile_per_thread_invariant() {
        // BY·BX = T·sub_y·sub_x for every entry of every table.
        for s in SINGLE_GEMM_STRATEGIES
            .iter()
            .chain(&BATCHED_STRATEGIES_128)
            .chain(&BATCHED_STRATEGIES_256)
        {
            assert_eq!(
                s.by * s.bx,
                s.threads as usize * s.sub_y * s.sub_x,
                "invariant broken for {s}"
            );
            assert_eq!(s.bk, 8, "paper fixes BK = 8");
        }
    }

    #[test]
    fn table1_matches_paper() {
        // Spot-check Table 1 rows: (BY, BX, threads, sub-tile).
        let rows: Vec<_> = SINGLE_GEMM_STRATEGIES
            .iter()
            .map(|s| (s.by, s.bx, s.threads, s.sub_y, s.sub_x))
            .collect();
        assert_eq!(
            rows,
            vec![
                (16, 16, 32, 4, 2),
                (32, 32, 64, 4, 4),
                (64, 64, 64, 8, 8),
                (128, 64, 128, 8, 8),
                (64, 128, 128, 8, 8),
                (128, 128, 256, 8, 8),
            ]
        );
    }

    #[test]
    fn table2_matches_paper() {
        let rows128: Vec<_> =
            BATCHED_STRATEGIES_128.iter().map(|s| (s.by, s.bx, s.sub_y, s.sub_x)).collect();
        assert_eq!(
            rows128,
            vec![(16, 16, 2, 1), (32, 32, 4, 2), (64, 64, 8, 4), (128, 64, 8, 8), (64, 128, 8, 8), (128, 128, 16, 8)]
        );
        let rows256: Vec<_> =
            BATCHED_STRATEGIES_256.iter().map(|s| (s.by, s.bx, s.sub_y, s.sub_x)).collect();
        assert_eq!(
            rows256,
            vec![(16, 16, 1, 1), (32, 32, 2, 2), (64, 64, 4, 4), (128, 64, 8, 4), (64, 128, 8, 4), (128, 128, 8, 8)]
        );
        assert!(BATCHED_STRATEGIES_128.iter().all(|s| s.threads == 128));
        assert!(BATCHED_STRATEGIES_256.iter().all(|s| s.threads == 256));
    }

    #[test]
    fn id_round_trips_all_twelve() {
        for (i, s) in batched_strategies().iter().enumerate() {
            assert_eq!(s.id() as usize, i);
            assert_eq!(TilingStrategy::from_id(s.id()), *s);
        }
    }

    #[test]
    fn tiles_uses_ceiling_division() {
        let small = batched(StrategyKind::Small, ThreadCount::T256);
        assert_eq!(small.tiles(16, 32), 2);
        assert_eq!(small.tiles(17, 32), 4);
        assert_eq!(small.tiles(1, 1), 1);
    }

    #[test]
    fn fits_rule() {
        let medium = batched(StrategyKind::Medium, ThreadCount::T256);
        assert!(medium.fits(32, 32));
        assert!(!medium.fits(16, 32));
        assert!(!medium.fits(32, 16));
    }

    #[test]
    fn footprints_are_resident_on_v100() {
        use ctb_gpu_specs::{occupancy, ArchSpec};
        let arch = ArchSpec::volta_v100();
        for s in batched_strategies() {
            let occ = occupancy::occupancy(&arch, &s.footprint());
            assert!(occ.blocks_per_sm >= 1, "{s} cannot run: {occ:?}");
        }
    }

    #[test]
    fn smem_is_double_buffered_tiles() {
        let large = batched(StrategyKind::Large, ThreadCount::T256);
        // 2 * (64*8 + 8*64) * 4 bytes = 8 KiB.
        assert_eq!(large.smem_bytes(), 8192);
    }
}

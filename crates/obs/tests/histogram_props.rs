//! Property tests pinning `ctb_obs::Histogram` semantics to a naive
//! sort-based oracle over arbitrary f64 streams — including ±0.0,
//! subnormals, infinities, NaNs of both signs, and duplicates.
//!
//! The key property: the bucket function is monotone non-decreasing
//! under `total_cmp`, so the histogram's nearest-rank percentile must
//! equal the upper edge of the bucket holding the *oracle's*
//! nearest-rank element. Count, min, max, and the insertion-order sum
//! are exact (bit-compared, so NaN streams still verify).

use ctb_obs::Histogram;
use proptest::prelude::*;

/// f64 stream element: weighted toward adversarial values.
fn sample() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(1.0f64),
        Just(2.0f64),
        Just(1024.0f64),
        Just(f64::MIN_POSITIVE),
        Just(f64::MIN_POSITIVE / 8.0), // subnormal
        Just(f64::MAX),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(-f64::NAN),
        -1.0e9f64..1.0e9f64,
        0.0f64..100.0f64,
    ]
}

/// Nearest-rank element of the `total_cmp`-sorted stream — the same
/// rank convention `ServeStats::percentile` and
/// `Histogram::percentile` use: `rank = ceil(q*n)` clamped to [1, n].
fn oracle_rank_element(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentile_matches_sort_oracle(
        values in proptest::collection::vec(sample(), 1..=80),
        q in 0.0f64..=1.0f64,
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let expect = Histogram::upper_edge(Histogram::bucket_of(oracle_rank_element(&values, q)));
        let got = hist.percentile(q);
        prop_assert!(
            got.to_bits() == expect.to_bits(),
            "percentile({q}) = {got}, oracle bucket edge {expect}, stream {values:?}"
        );
    }

    #[test]
    fn fixed_quantiles_match_sort_oracle(values in proptest::collection::vec(sample(), 1..=80)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.observe(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let expect =
                Histogram::upper_edge(Histogram::bucket_of(oracle_rank_element(&values, q)));
            prop_assert!(hist.percentile(q).to_bits() == expect.to_bits());
        }
    }

    #[test]
    fn count_sum_min_max_are_exact(values in proptest::collection::vec(sample(), 1..=80)) {
        let mut hist = Histogram::new();
        let mut naive_sum = 0.0f64;
        for &v in &values {
            hist.observe(v);
            naive_sum += v;
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(hist.count(), values.len() as u64);
        // Bit-exact sums, except that adding two NaNs is not bitwise
        // commutative at the hardware level (the propagated payload
        // depends on operand order) — there only NaN-ness is pinned.
        if naive_sum.is_nan() {
            prop_assert!(hist.sum().is_nan());
        } else {
            prop_assert!(hist.sum().to_bits() == naive_sum.to_bits(), "insertion-order sum is exact");
        }
        prop_assert!(hist.min().to_bits() == sorted[0].to_bits(), "min is total_cmp minimum");
        prop_assert!(
            hist.max().to_bits() == sorted[sorted.len() - 1].to_bits(),
            "max is total_cmp maximum"
        );
        prop_assert_eq!(hist.buckets().iter().sum::<u64>(), values.len() as u64);
    }

    #[test]
    fn bucket_is_monotone_under_total_cmp(values in proptest::collection::vec(sample(), 2..=80)) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.total_cmp(b));
        for w in sorted.windows(2) {
            prop_assert!(
                Histogram::bucket_of(w[0]) <= Histogram::bucket_of(w[1]),
                "bucket_of not monotone: {} -> {}, {} -> {}",
                w[0],
                Histogram::bucket_of(w[0]),
                w[1],
                Histogram::bucket_of(w[1])
            );
        }
    }

    #[test]
    fn merge_equals_observing_the_concatenation(
        left in proptest::collection::vec(sample(), 0..=40),
        right in proptest::collection::vec(sample(), 0..=40),
    ) {
        let mut a = Histogram::new();
        for &v in &left {
            a.observe(v);
        }
        let mut b = Histogram::new();
        for &v in &right {
            b.observe(v);
        }
        let mut whole = Histogram::new();
        for &v in left.iter().chain(right.iter()) {
            whole.observe(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.buckets(), whole.buckets());
        // Sums differ only by association order; min/max are exact.
        if whole.count() > 0 {
            prop_assert!(a.min().to_bits() == whole.min().to_bits());
            prop_assert!(a.max().to_bits() == whole.max().to_bits());
        }
        for q in [0.5, 0.95] {
            prop_assert!(a.percentile(q).to_bits() == whole.percentile(q).to_bits());
        }
    }
}

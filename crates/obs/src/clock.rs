//! Pluggable monotonic clocks for the event bus.
//!
//! Instrumented code never calls [`std::time::Instant`] directly; it
//! asks the installed [`Obs`](crate::Obs) for microseconds through an
//! [`ObsClock`]. Wall-time runs use [`WallClock`]; deterministic tests
//! install a [`SimClock`] they advance by hand, which makes two runs of
//! the same seeded workload produce byte-identical traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic microsecond source. Implementations must never go
/// backwards between two calls observed by the same thread.
pub trait ObsClock: Send + Sync {
    /// Microseconds since the clock's origin.
    fn now_us(&self) -> u64;
}

/// Wall-time clock: microseconds since construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsClock for WallClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Simulated clock: a shared counter the test advances explicitly.
/// Reads never tick it, so a run's timestamps depend only on where the
/// test put the clock — the bedrock of the byte-identical-trace
/// determinism property.
pub struct SimClock {
    now: AtomicU64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock { now: AtomicU64::new(0) }
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute time. Panics on rewind: the bus
    /// relies on monotonicity.
    pub fn set(&self, us: u64) {
        let prev = self.now.swap(us, Ordering::SeqCst);
        assert!(us >= prev, "SimClock::set would rewind time ({us} < {prev})");
    }

    /// Step the clock forward to `us` if that is ahead of the current
    /// reading; a stale or equal target is a no-op. Returns whether the
    /// clock moved. This is the seam the discrete-event engine drives:
    /// the heap pops events in timestamp order, so each pop advances
    /// the shared clock monotonically without ever tripping the
    /// [`set`](Self::set) rewind panic on same-timestamp event runs.
    pub fn advance_to(&self, us: u64) -> bool {
        let mut cur = self.now.load(Ordering::SeqCst);
        while us > cur {
            match self.now.compare_exchange_weak(cur, us, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsClock for SimClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_only_moves_when_told() {
        let c = SimClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 0);
        c.advance(250);
        assert_eq!(c.now_us(), 250);
        c.set(1_000);
        assert_eq!(c.now_us(), 1_000);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn sim_clock_refuses_to_rewind() {
        let c = SimClock::new();
        c.advance(10);
        c.set(5);
    }

    #[test]
    fn advance_to_is_monotonic_and_idempotent() {
        let c = SimClock::new();
        assert!(c.advance_to(100));
        assert_eq!(c.now_us(), 100);
        // Equal and stale targets are no-ops, never a rewind panic.
        assert!(!c.advance_to(100));
        assert!(!c.advance_to(40));
        assert_eq!(c.now_us(), 100);
        assert!(c.advance_to(101));
        assert_eq!(c.now_us(), 101);
    }
}

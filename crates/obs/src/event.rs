//! The trace vocabulary: spans and point events.
//!
//! Spans bracket the phases the paper's framework actually spends time
//! in — plan selection (tiling + batching coordination), autotune /
//! simulation lookups, and batch execution — plus the serving-layer
//! seams around them (coalescing windows, cluster placement). Point
//! events mark the state transitions the layer stats count, one event
//! per counter increment, which is what lets
//! [`TraceAudit`](crate::audit::TraceAudit) reconcile a trace against
//! `ServeStats` / `ClusterStats` / `FaultLog` with `==` rather than
//! tolerance.

/// A phase with duration: emitted as a `SpanBegin`/`SpanEnd` pair
/// sharing an id, nested per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// `Session::plan` — tiling selection + batching coordination.
    Plan,
    /// Cold-path plan construction (solver + `SimMemo` simulation).
    Autotune,
    /// Coordinated batch execution through the packed executor.
    Exec,
    /// Per-kernel baseline fallback execution (degraded path).
    DegradedExec,
    /// A serve batching window: first pop to batch dispatch.
    Coalesce,
    /// Cluster placement decision (sim-cost argmin over devices).
    Place,
}

impl SpanKind {
    /// Stable lowercase name used for metric keys and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Plan => "plan",
            SpanKind::Autotune => "autotune",
            SpanKind::Exec => "exec",
            SpanKind::DegradedExec => "degraded_exec",
            SpanKind::Coalesce => "coalesce",
            SpanKind::Place => "place",
        }
    }

    /// Every span kind, in a fixed order (JSON schema stability).
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Plan,
        SpanKind::Autotune,
        SpanKind::Exec,
        SpanKind::DegradedExec,
        SpanKind::Coalesce,
        SpanKind::Place,
    ];
}

/// An instantaneous state transition.
///
/// Terminal events — [`Respond`](PointKind::Respond),
/// [`Expired`](PointKind::Expired), [`Failed`](PointKind::Failed),
/// [`BatchDone`](PointKind::BatchDone) — close the life of one admitted
/// request; the audit demands exactly one per
/// [`Admit`](PointKind::Admit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointKind {
    /// Request accepted into an admission queue.
    ///
    /// Emitted *before* the queue push so downstream events can never
    /// precede it in the log; if the push then fails, a
    /// [`Reject`](PointKind::Reject) carrying the same `req` closes it.
    Admit { req: u64 },
    /// Request refused at admission. `req` is `None` when the refusal
    /// happened before admission (injected saturation); `Some` when an
    /// already-admitted request bounced off a full/closed queue — that
    /// form is a terminal event for `req`.
    Reject { req: Option<u64> },
    /// A panicked batch member re-queued as a singleton.
    Retry { req: u64 },
    /// A worker panic contained by `catch_unwind`.
    PanicCaught,
    /// Planning returned an error (real or injected).
    PlanFailure,
    /// A circuit breaker tripped open.
    BreakerTrip,
    /// One coalesced batch finished coordinated execution.
    BatchExecuted { size: usize },
    /// Terminal: result delivered (or the ticket was dropped —
    /// `abandoned`). `batch` is the span id of the Exec/DegradedExec
    /// span that produced the result; the timing fields mirror the
    /// `RequestTiming` handed to the caller, so the audit can check
    /// `queue + plan + exec == total` and that `exec_us` equals the
    /// referenced span's duration, exactly.
    Respond {
        req: u64,
        batch: u64,
        degraded: bool,
        abandoned: bool,
        queue_us: f64,
        plan_us: f64,
        exec_us: f64,
        total_us: f64,
    },
    /// Terminal: deadline passed before planning.
    Expired { req: u64, abandoned: bool },
    /// Terminal: request failed (plan failure past budget, panic past
    /// retries, degraded-path panic).
    Failed { req: u64, abandoned: bool },
    /// Plan cache hit in `Session::plan`.
    PlanCacheHit,
    /// Plan cache miss (this call built and inserted the plan).
    PlanCacheMiss,
    /// Cluster: batch placed on a device queue.
    Routed { device: usize },
    /// Cluster: idle device stole a batch from a victim's queue.
    Steal { to: usize, from: usize },
    /// Cluster: batch bounced off a failing device and re-entered
    /// placement.
    Reroute { from: usize },
    /// Cluster: device administratively killed.
    Kill { device: usize },
    /// Terminal (cluster): batch finished on `device`.
    BatchDone { req: u64, device: usize, degraded: bool, abandoned: bool },
}

impl PointKind {
    /// Stable lowercase name used for metric keys and JSON exports.
    pub fn name(&self) -> &'static str {
        match self {
            PointKind::Admit { .. } => "admit",
            PointKind::Reject { .. } => "reject",
            PointKind::Retry { .. } => "retry",
            PointKind::PanicCaught => "panic_caught",
            PointKind::PlanFailure => "plan_failure",
            PointKind::BreakerTrip => "breaker_trip",
            PointKind::BatchExecuted { .. } => "batch_executed",
            PointKind::Respond { .. } => "respond",
            PointKind::Expired { .. } => "expired",
            PointKind::Failed { .. } => "failed",
            PointKind::PlanCacheHit => "plan_cache_hit",
            PointKind::PlanCacheMiss => "plan_cache_miss",
            PointKind::Routed { .. } => "routed",
            PointKind::Steal { .. } => "steal",
            PointKind::Reroute { .. } => "reroute",
            PointKind::Kill { .. } => "kill",
            PointKind::BatchDone { .. } => "batch_done",
        }
    }

    /// Names of every point kind, in a fixed order (JSON schema
    /// stability — exports emit all of them even when zero).
    pub const ALL_NAMES: [&'static str; 17] = [
        "admit",
        "reject",
        "retry",
        "panic_caught",
        "plan_failure",
        "breaker_trip",
        "batch_executed",
        "respond",
        "expired",
        "failed",
        "plan_cache_hit",
        "plan_cache_miss",
        "routed",
        "steal",
        "reroute",
        "kill",
        "batch_done",
    ];
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Span opened; `id` is the begin event's own `seq` (unique and
    /// deterministic).
    SpanBegin { span: SpanKind, id: u64 },
    /// Span closed; `id` matches the begin.
    SpanEnd { span: SpanKind, id: u64 },
    /// Instantaneous event.
    Point(PointKind),
}

/// One trace entry. `seq` is assigned under the log lock, so trace
/// order and `seq` order agree; `worker` is a dense id assigned to
/// threads in first-emission order (deterministic for serial
/// workloads, unlike `ThreadId`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub t_us: u64,
    pub worker: u32,
    pub kind: EventKind,
}

impl Event {
    /// Stable single-line rendering; `Obs::render` concatenates these,
    /// and the determinism suite compares the result byte-for-byte.
    pub fn render(&self) -> String {
        format!("#{} t={}us w={} {:?}", self.seq, self.t_us, self.worker, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let mut seen = std::collections::BTreeSet::new();
        for k in SpanKind::ALL {
            assert!(seen.insert(k.name()), "duplicate span name {}", k.name());
        }
        let mut seen = std::collections::BTreeSet::new();
        for n in PointKind::ALL_NAMES {
            assert!(seen.insert(n), "duplicate point name {n}");
        }
        // Spot-check that `name()` agrees with the ALL_NAMES table.
        assert_eq!(PointKind::Admit { req: 0 }.name(), PointKind::ALL_NAMES[0]);
        assert_eq!(PointKind::Reject { req: None }.name(), PointKind::ALL_NAMES[1]);
        assert_eq!(
            PointKind::BatchDone { req: 0, device: 0, degraded: false, abandoned: false }.name(),
            PointKind::ALL_NAMES[16]
        );
    }

    #[test]
    fn render_is_stable() {
        let e = Event {
            seq: 7,
            t_us: 1234,
            worker: 2,
            kind: EventKind::Point(PointKind::Admit { req: 42 }),
        };
        assert_eq!(e.render(), "#7 t=1234us w=2 Point(Admit { req: 42 })");
    }
}

//! The trace vocabulary: spans and point events.
//!
//! Spans bracket the phases the paper's framework actually spends time
//! in — plan selection (tiling + batching coordination), autotune /
//! simulation lookups, and batch execution — plus the serving-layer
//! seams around them (coalescing windows, cluster placement). Point
//! events mark the state transitions the layer stats count, one event
//! per counter increment, which is what lets
//! [`TraceAudit`](crate::audit::TraceAudit) reconcile a trace against
//! `ServeStats` / `ClusterStats` / `FaultLog` with `==` rather than
//! tolerance.

/// A phase with duration: emitted as a `SpanBegin`/`SpanEnd` pair
/// sharing an id, nested per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// `Session::plan` — tiling selection + batching coordination.
    Plan,
    /// Cold-path plan construction (solver + `SimMemo` simulation).
    Autotune,
    /// Coordinated batch execution through the packed executor.
    Exec,
    /// Per-kernel baseline fallback execution (degraded path).
    DegradedExec,
    /// A serve batching window: first pop to batch dispatch.
    Coalesce,
    /// Cluster placement decision (sim-cost argmin over devices).
    Place,
}

impl SpanKind {
    /// Stable lowercase name used for metric keys and JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Plan => "plan",
            SpanKind::Autotune => "autotune",
            SpanKind::Exec => "exec",
            SpanKind::DegradedExec => "degraded_exec",
            SpanKind::Coalesce => "coalesce",
            SpanKind::Place => "place",
        }
    }

    /// Every span kind, in a fixed order (JSON schema stability).
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Plan,
        SpanKind::Autotune,
        SpanKind::Exec,
        SpanKind::DegradedExec,
        SpanKind::Coalesce,
        SpanKind::Place,
    ];
}

/// An instantaneous state transition.
///
/// Terminal events — [`Respond`](PointKind::Respond),
/// [`Expired`](PointKind::Expired), [`Failed`](PointKind::Failed),
/// [`BatchDone`](PointKind::BatchDone) — close the life of one admitted
/// request; the audit demands exactly one per
/// [`Admit`](PointKind::Admit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointKind {
    /// Request accepted into an admission queue.
    ///
    /// Emitted *before* the queue push so downstream events can never
    /// precede it in the log; if the push then fails, a
    /// [`Reject`](PointKind::Reject) carrying the same `req` closes it.
    Admit { req: u64 },
    /// Request refused at admission. `req` is `None` when the refusal
    /// happened before admission (injected saturation); `Some` when an
    /// already-admitted request bounced off a full/closed queue — that
    /// form is a terminal event for `req`.
    Reject { req: Option<u64> },
    /// A panicked batch member re-queued as a singleton.
    Retry { req: u64 },
    /// A worker panic contained by `catch_unwind`.
    PanicCaught,
    /// Planning returned an error (real or injected).
    PlanFailure,
    /// A circuit breaker tripped open.
    BreakerTrip,
    /// One coalesced batch finished coordinated execution.
    BatchExecuted { size: usize },
    /// Terminal: result delivered (or the ticket was dropped —
    /// `abandoned`). `batch` is the span id of the Exec/DegradedExec
    /// span that produced the result; the timing fields mirror the
    /// `RequestTiming` handed to the caller, so the audit can check
    /// `queue + plan + exec == total` and that `exec_us` equals the
    /// referenced span's duration, exactly.
    Respond {
        req: u64,
        batch: u64,
        degraded: bool,
        abandoned: bool,
        queue_us: f64,
        plan_us: f64,
        exec_us: f64,
        total_us: f64,
    },
    /// Terminal: deadline passed before planning.
    Expired { req: u64, abandoned: bool },
    /// Terminal: request failed (plan failure past budget, panic past
    /// retries, degraded-path panic).
    Failed { req: u64, abandoned: bool },
    /// Plan cache hit in `Session::plan`.
    PlanCacheHit,
    /// Plan cache miss (this call built and inserted the plan).
    PlanCacheMiss,
    /// Plan cache insert turned away by the Bloom "seen twice"
    /// admission gate (first sighting of the key: the plan was served
    /// but not cached). Always accompanied by a
    /// [`PlanCacheMiss`](PointKind::PlanCacheMiss).
    PlanCacheDenied,
    /// Cluster: batch placed on a device queue.
    Routed { device: usize },
    /// Cluster: idle device stole a batch from a victim's queue.
    Steal { to: usize, from: usize },
    /// Cluster: batch bounced off a failing device and re-entered
    /// placement.
    Reroute { from: usize },
    /// Cluster: device administratively killed.
    Kill { device: usize },
    /// Terminal (cluster): batch finished on `device`.
    BatchDone { req: u64, device: usize, degraded: bool, abandoned: bool },
    /// Cluster: a placement (or steal) landed on the device already
    /// holding the batch's operands — no interposer staging.
    ResidencyHit { device: usize },
    /// Cluster: a placement (or steal) had to stage operands onto a
    /// non-resident device; the remote share crossed the interposer.
    ResidencyMiss { device: usize },
}

impl PointKind {
    /// Stable lowercase name used for metric keys and JSON exports.
    pub fn name(&self) -> &'static str {
        match self {
            PointKind::Admit { .. } => "admit",
            PointKind::Reject { .. } => "reject",
            PointKind::Retry { .. } => "retry",
            PointKind::PanicCaught => "panic_caught",
            PointKind::PlanFailure => "plan_failure",
            PointKind::BreakerTrip => "breaker_trip",
            PointKind::BatchExecuted { .. } => "batch_executed",
            PointKind::Respond { .. } => "respond",
            PointKind::Expired { .. } => "expired",
            PointKind::Failed { .. } => "failed",
            PointKind::PlanCacheHit => "plan_cache_hit",
            PointKind::PlanCacheMiss => "plan_cache_miss",
            PointKind::PlanCacheDenied => "plan_cache_denied",
            PointKind::Routed { .. } => "routed",
            PointKind::Steal { .. } => "steal",
            PointKind::Reroute { .. } => "reroute",
            PointKind::Kill { .. } => "kill",
            PointKind::BatchDone { .. } => "batch_done",
            PointKind::ResidencyHit { .. } => "residency_hit",
            PointKind::ResidencyMiss { .. } => "residency_miss",
        }
    }

    /// Names of every point kind, in a fixed order (JSON schema
    /// stability — exports emit all of them even when zero).
    pub const ALL_NAMES: [&'static str; 20] = [
        "admit",
        "reject",
        "retry",
        "panic_caught",
        "plan_failure",
        "breaker_trip",
        "batch_executed",
        "respond",
        "expired",
        "failed",
        "plan_cache_hit",
        "plan_cache_miss",
        "plan_cache_denied",
        "routed",
        "steal",
        "reroute",
        "kill",
        "batch_done",
        "residency_hit",
        "residency_miss",
    ];
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Span opened; `id` is the begin event's own `seq` (unique and
    /// deterministic).
    SpanBegin { span: SpanKind, id: u64 },
    /// Span closed; `id` matches the begin.
    SpanEnd { span: SpanKind, id: u64 },
    /// Instantaneous event.
    Point(PointKind),
}

/// One trace entry. `seq` is assigned under the log lock, so trace
/// order and `seq` order agree; `worker` is a dense id assigned to
/// threads in first-emission order (deterministic for serial
/// workloads, unlike `ThreadId`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub t_us: u64,
    pub worker: u32,
    pub kind: EventKind,
}

impl Event {
    /// Stable single-line rendering; `Obs::render` concatenates these,
    /// and the determinism suite compares the result byte-for-byte.
    pub fn render(&self) -> String {
        format!("#{} t={}us w={} {:?}", self.seq, self.t_us, self.worker, self.kind)
    }
}

fn span_tag(s: SpanKind) -> u8 {
    match s {
        SpanKind::Plan => 0,
        SpanKind::Autotune => 1,
        SpanKind::Exec => 2,
        SpanKind::DegradedExec => 3,
        SpanKind::Coalesce => 4,
        SpanKind::Place => 5,
    }
}

fn span_from_tag(tag: u8) -> Result<SpanKind, ctb_savestate::SavestateError> {
    SpanKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| ctb_savestate::SavestateError::Corrupt(format!("bad span tag {tag}")))
}

fn save_opt_u64(w: &mut ctb_savestate::Writer, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => w.bool(false),
    }
}

fn load_opt_u64(
    r: &mut ctb_savestate::Reader<'_>,
) -> Result<Option<u64>, ctb_savestate::SavestateError> {
    Ok(if r.bool()? { Some(r.u64()?) } else { None })
}

impl ctb_savestate::Savestate for Event {
    fn save(&self, w: &mut ctb_savestate::Writer) {
        w.u64(self.seq);
        w.u64(self.t_us);
        w.u32(self.worker);
        match self.kind {
            EventKind::SpanBegin { span, id } => {
                w.u8(0);
                w.u8(span_tag(span));
                w.u64(id);
            }
            EventKind::SpanEnd { span, id } => {
                w.u8(1);
                w.u8(span_tag(span));
                w.u64(id);
            }
            EventKind::Point(p) => {
                w.u8(2);
                match p {
                    PointKind::Admit { req } => {
                        w.u8(0);
                        w.u64(req);
                    }
                    PointKind::Reject { req } => {
                        w.u8(1);
                        save_opt_u64(w, req);
                    }
                    PointKind::Retry { req } => {
                        w.u8(2);
                        w.u64(req);
                    }
                    PointKind::PanicCaught => w.u8(3),
                    PointKind::PlanFailure => w.u8(4),
                    PointKind::BreakerTrip => w.u8(5),
                    PointKind::BatchExecuted { size } => {
                        w.u8(6);
                        w.u64(size as u64);
                    }
                    PointKind::Respond {
                        req,
                        batch,
                        degraded,
                        abandoned,
                        queue_us,
                        plan_us,
                        exec_us,
                        total_us,
                    } => {
                        w.u8(7);
                        w.u64(req);
                        w.u64(batch);
                        w.bool(degraded);
                        w.bool(abandoned);
                        w.f64(queue_us);
                        w.f64(plan_us);
                        w.f64(exec_us);
                        w.f64(total_us);
                    }
                    PointKind::Expired { req, abandoned } => {
                        w.u8(8);
                        w.u64(req);
                        w.bool(abandoned);
                    }
                    PointKind::Failed { req, abandoned } => {
                        w.u8(9);
                        w.u64(req);
                        w.bool(abandoned);
                    }
                    PointKind::PlanCacheHit => w.u8(10),
                    PointKind::PlanCacheMiss => w.u8(11),
                    PointKind::Routed { device } => {
                        w.u8(12);
                        w.u64(device as u64);
                    }
                    PointKind::Steal { to, from } => {
                        w.u8(13);
                        w.u64(to as u64);
                        w.u64(from as u64);
                    }
                    PointKind::Reroute { from } => {
                        w.u8(14);
                        w.u64(from as u64);
                    }
                    PointKind::Kill { device } => {
                        w.u8(15);
                        w.u64(device as u64);
                    }
                    PointKind::BatchDone { req, device, degraded, abandoned } => {
                        w.u8(16);
                        w.u64(req);
                        w.u64(device as u64);
                        w.bool(degraded);
                        w.bool(abandoned);
                    }
                    // Appended after the cluster tags so every tag
                    // value stays stable across format versions.
                    PointKind::PlanCacheDenied => w.u8(17),
                    PointKind::ResidencyHit { device } => {
                        w.u8(18);
                        w.u64(device as u64);
                    }
                    PointKind::ResidencyMiss { device } => {
                        w.u8(19);
                        w.u64(device as u64);
                    }
                }
            }
        }
    }

    fn load(r: &mut ctb_savestate::Reader<'_>) -> Result<Self, ctb_savestate::SavestateError> {
        use ctb_savestate::SavestateError;
        let seq = r.u64()?;
        let t_us = r.u64()?;
        let worker = r.u32()?;
        let kind = match r.u8()? {
            0 => EventKind::SpanBegin { span: span_from_tag(r.u8()?)?, id: r.u64()? },
            1 => EventKind::SpanEnd { span: span_from_tag(r.u8()?)?, id: r.u64()? },
            2 => EventKind::Point(match r.u8()? {
                0 => PointKind::Admit { req: r.u64()? },
                1 => PointKind::Reject { req: load_opt_u64(r)? },
                2 => PointKind::Retry { req: r.u64()? },
                3 => PointKind::PanicCaught,
                4 => PointKind::PlanFailure,
                5 => PointKind::BreakerTrip,
                6 => PointKind::BatchExecuted { size: r.u64()? as usize },
                7 => PointKind::Respond {
                    req: r.u64()?,
                    batch: r.u64()?,
                    degraded: r.bool()?,
                    abandoned: r.bool()?,
                    queue_us: r.f64()?,
                    plan_us: r.f64()?,
                    exec_us: r.f64()?,
                    total_us: r.f64()?,
                },
                8 => PointKind::Expired { req: r.u64()?, abandoned: r.bool()? },
                9 => PointKind::Failed { req: r.u64()?, abandoned: r.bool()? },
                10 => PointKind::PlanCacheHit,
                11 => PointKind::PlanCacheMiss,
                12 => PointKind::Routed { device: r.u64()? as usize },
                13 => PointKind::Steal { to: r.u64()? as usize, from: r.u64()? as usize },
                14 => PointKind::Reroute { from: r.u64()? as usize },
                15 => PointKind::Kill { device: r.u64()? as usize },
                16 => PointKind::BatchDone {
                    req: r.u64()?,
                    device: r.u64()? as usize,
                    degraded: r.bool()?,
                    abandoned: r.bool()?,
                },
                17 => PointKind::PlanCacheDenied,
                18 => PointKind::ResidencyHit { device: r.u64()? as usize },
                19 => PointKind::ResidencyMiss { device: r.u64()? as usize },
                t => return Err(SavestateError::Corrupt(format!("bad point tag {t}"))),
            }),
            t => return Err(SavestateError::Corrupt(format!("bad event-kind tag {t}"))),
        };
        Ok(Event { seq, t_us, worker, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let mut seen = std::collections::BTreeSet::new();
        for k in SpanKind::ALL {
            assert!(seen.insert(k.name()), "duplicate span name {}", k.name());
        }
        let mut seen = std::collections::BTreeSet::new();
        for n in PointKind::ALL_NAMES {
            assert!(seen.insert(n), "duplicate point name {n}");
        }
        // Spot-check that `name()` agrees with the ALL_NAMES table.
        assert_eq!(PointKind::Admit { req: 0 }.name(), PointKind::ALL_NAMES[0]);
        assert_eq!(PointKind::Reject { req: None }.name(), PointKind::ALL_NAMES[1]);
        assert_eq!(
            PointKind::BatchDone { req: 0, device: 0, degraded: false, abandoned: false }.name(),
            PointKind::ALL_NAMES[17]
        );
        assert_eq!(PointKind::PlanCacheDenied.name(), PointKind::ALL_NAMES[12]);
        assert_eq!(PointKind::ResidencyHit { device: 0 }.name(), PointKind::ALL_NAMES[18]);
        assert_eq!(PointKind::ResidencyMiss { device: 0 }.name(), PointKind::ALL_NAMES[19]);
    }

    #[test]
    fn event_codec_round_trips_every_kind_bitwise() {
        use ctb_savestate::{Reader, Savestate as _, Writer};
        let mut kinds: Vec<EventKind> = Vec::new();
        for s in SpanKind::ALL {
            kinds.push(EventKind::SpanBegin { span: s, id: 7 });
            kinds.push(EventKind::SpanEnd { span: s, id: 7 });
        }
        kinds.extend([
            EventKind::Point(PointKind::Admit { req: 3 }),
            EventKind::Point(PointKind::Reject { req: None }),
            EventKind::Point(PointKind::Reject { req: Some(9) }),
            EventKind::Point(PointKind::Retry { req: 4 }),
            EventKind::Point(PointKind::PanicCaught),
            EventKind::Point(PointKind::PlanFailure),
            EventKind::Point(PointKind::BreakerTrip),
            EventKind::Point(PointKind::BatchExecuted { size: 12 }),
            EventKind::Point(PointKind::Respond {
                req: 1,
                batch: 2,
                degraded: true,
                abandoned: false,
                queue_us: 1.5,
                plan_us: f64::from_bits(0x7FF8_0000_0000_0001), // NaN payload
                exec_us: -0.0,
                total_us: 3.25,
            }),
            EventKind::Point(PointKind::Expired { req: 5, abandoned: true }),
            EventKind::Point(PointKind::Failed { req: 6, abandoned: false }),
            EventKind::Point(PointKind::PlanCacheHit),
            EventKind::Point(PointKind::PlanCacheMiss),
            EventKind::Point(PointKind::PlanCacheDenied),
            EventKind::Point(PointKind::Routed { device: 3 }),
            EventKind::Point(PointKind::Steal { to: 1, from: 2 }),
            EventKind::Point(PointKind::Reroute { from: 0 }),
            EventKind::Point(PointKind::Kill { device: 9 }),
            EventKind::Point(PointKind::BatchDone { req: 8, device: 1, degraded: false, abandoned: true }),
            EventKind::Point(PointKind::ResidencyHit { device: 4 }),
            EventKind::Point(PointKind::ResidencyMiss { device: 5 }),
        ]);
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = Event { seq: i as u64, t_us: 1000 + i as u64, worker: (i % 3) as u32, kind };
            let mut w = Writer::new();
            e.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = Event::load(&mut r).unwrap();
            r.expect_end().unwrap();
            // render() covers every field debug-formatted, so equal
            // renders == equal events, bitwise f64s included.
            assert_eq!(back.render(), e.render());
        }
    }

    #[test]
    fn event_codec_rejects_bad_tags_with_typed_errors() {
        use ctb_savestate::{Reader, Savestate as _, SavestateError, Writer};
        let mut w = Writer::new();
        w.u64(0);
        w.u64(0);
        w.u32(0);
        w.u8(2); // point…
        w.u8(99); // …with an invalid point tag
        let bytes = w.into_bytes();
        assert!(matches!(
            Event::load(&mut Reader::new(&bytes)),
            Err(SavestateError::Corrupt(_))
        ));
    }

    #[test]
    fn render_is_stable() {
        let e = Event {
            seq: 7,
            t_us: 1234,
            worker: 2,
            kind: EventKind::Point(PointKind::Admit { req: 42 }),
        };
        assert_eq!(e.render(), "#7 t=1234us w=2 Point(Admit { req: 42 })");
    }
}

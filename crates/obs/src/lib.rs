//! `ctb-obs` — structured observability for the coordinated
//! tiling-and-batching stack.
//!
//! One [`Obs`] instance is a process-local event bus: instrumented
//! seams in `ctb-core`, `ctb-serve`, and `ctb-cluster` emit **spans**
//! (plan / autotune / exec / coalesce / place phases, begin + end with
//! monotonic microsecond timestamps) and **point events** (admission,
//! rejection, retries, breaker trips, terminal outcomes — one event per
//! stats-counter increment). The bus also maintains a **metrics
//! registry** (counters, gauges, fixed-bucket histograms; snapshot-able
//! and mergeable) and a bounded **flight recorder** ring whose contents
//! dump on worker panic or breaker trip.
//!
//! Installation follows the same seam as the fault injector: every
//! layer holds an `Option<Arc<Obs>>` that defaults to `None`, so an
//! uninstrumented run pays one pointer-null check per site and nothing
//! else. The clock is pluggable ([`WallClock`] for production,
//! [`SimClock`] for tests), which makes a seeded single-worker workload
//! produce **byte-identical** traces across runs — the determinism
//! suite holds the bus to exactly that.
//!
//! ```
//! use ctb_obs::{Obs, PointKind, SpanKind, TraceAudit};
//! use std::sync::Arc;
//!
//! let obs = Arc::new(Obs::wall());
//! let t_admit = obs.point(PointKind::Admit { req: 0 });
//! let exec = obs.span(SpanKind::Exec);
//! let batch = exec.id();
//! let (begin, end) = exec.finish();
//! let exec_us = (end - begin) as f64;
//! let queue_us = (begin - t_admit) as f64;
//! obs.point(PointKind::Respond {
//!     req: 0,
//!     batch,
//!     degraded: false,
//!     abandoned: false,
//!     queue_us,
//!     plan_us: 0.0,
//!     exec_us,
//!     total_us: queue_us + 0.0 + exec_us,
//! });
//! let counts = TraceAudit::new(obs.events()).check().expect("trace audits clean");
//! assert_eq!(counts.terminals(), 1);
//! ```

pub mod audit;
pub mod clock;
pub mod event;
pub mod flight;
pub mod metrics;

pub use audit::{TraceAudit, TraceCounts};
pub use clock::{ObsClock, SimClock, WallClock};
pub use event::{Event, EventKind, PointKind, SpanKind};
pub use flight::FlightDump;
pub use metrics::{Histogram, Metrics, MetricsSnapshot, HIST_BUCKETS};

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

/// Bus configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Flight-recorder capacity (most recent events kept).
    pub ring_capacity: usize,
    /// Keep the full event log (audit + determinism). Disable for
    /// long-running metric-only subscribers.
    pub record_log: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { ring_capacity: 256, record_log: true }
    }
}

struct LogInner {
    next_seq: u64,
    events: Vec<Event>,
    ring: VecDeque<Event>,
    /// Dense worker ids, assigned in first-emission order so serial
    /// workloads get deterministic ids (raw `ThreadId`s are not).
    workers: HashMap<ThreadId, u32>,
}

/// The event bus. Shared as `Arc<Obs>` across layers; all emission
/// funnels through one mutex so `seq` order, log order, and ring order
/// agree — the audit's ordering invariants depend on it.
pub struct Obs {
    clock: Arc<dyn ObsClock>,
    inner: Mutex<LogInner>,
    dumps: Mutex<Vec<FlightDump>>,
    metrics: Metrics,
    cfg: ObsConfig,
}

impl Obs {
    /// Wall-clock bus with default config.
    pub fn wall() -> Self {
        Self::with_clock(Arc::new(WallClock::new()), ObsConfig::default())
    }

    /// Simulated-clock bus; the caller keeps the clock and advances it.
    pub fn sim(clock: Arc<SimClock>) -> Self {
        Self::with_clock(clock, ObsConfig::default())
    }

    pub fn with_clock(clock: Arc<dyn ObsClock>, cfg: ObsConfig) -> Self {
        Obs {
            clock,
            inner: Mutex::new(LogInner {
                next_seq: 0,
                events: Vec::new(),
                ring: VecDeque::with_capacity(cfg.ring_capacity.min(1024)),
                workers: HashMap::new(),
            }),
            dumps: Mutex::new(Vec::new()),
            metrics: Metrics::new(),
            cfg,
        }
    }

    /// Current bus time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Emit one event whose kind may depend on the seq it is assigned
    /// (span ids are their begin event's seq). Returns (seq, t_us).
    fn emit_with(&self, f: impl FnOnce(u64) -> EventKind) -> (u64, u64) {
        let tid = std::thread::current().id();
        let mut inner = self.inner.lock().unwrap();
        let t_us = self.clock.now_us();
        let next_worker = inner.workers.len() as u32;
        let worker = *inner.workers.entry(tid).or_insert(next_worker);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let e = Event { seq, t_us, worker, kind: f(seq) };
        if self.cfg.record_log {
            inner.events.push(e);
        }
        if self.cfg.ring_capacity > 0 {
            if inner.ring.len() == self.cfg.ring_capacity {
                inner.ring.pop_front();
            }
            inner.ring.push_back(e);
        }
        (seq, t_us)
    }

    /// Record an instantaneous event; returns its timestamp (callers
    /// use it to anchor durations to the same clock, e.g. queue time
    /// measured from the `Admit` event).
    pub fn point(&self, kind: PointKind) -> u64 {
        let name = kind.name();
        let (_, t_us) = self.emit_with(|_| EventKind::Point(kind));
        self.metrics.add(&format!("point.{name}"), 1);
        t_us
    }

    /// Open a span. Close it with [`SpanGuard::finish`] to get the
    /// exact (begin, end) microsecond pair; if the guard instead drops
    /// during unwind, the drop emits the `SpanEnd` so traces stay
    /// well-formed across panics.
    pub fn span(&self, kind: SpanKind) -> SpanGuard<'_> {
        let (seq, t_us) = self.emit_with(|seq| EventKind::SpanBegin { span: kind, id: seq });
        SpanGuard { obs: self, kind, id: seq, begin_us: t_us, done: false }
    }

    fn end_span(&self, kind: SpanKind, id: u64, begin_us: u64) -> u64 {
        let (_, end_us) = self.emit_with(|_| EventKind::SpanEnd { span: kind, id });
        let name = kind.name();
        self.metrics.add(&format!("span.{name}.count"), 1);
        self.metrics.observe(&format!("span.{name}.us"), (end_us - begin_us) as f64);
        end_us
    }

    /// Copy of the full event log (empty when `record_log` is off).
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Byte-stable rendering of the whole log, one event per line —
    /// what the determinism suite compares across runs.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for e in &inner.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Snapshot the flight ring into the dump list. Called on worker
    /// panic and breaker trip; tests read it back with
    /// [`flight_dumps`](Self::flight_dumps).
    pub fn dump_flight(&self, reason: &str) {
        let events: Vec<Event> = {
            let inner = self.inner.lock().unwrap();
            inner.ring.iter().copied().collect()
        };
        self.metrics.add("flight.dumps", 1);
        self.dumps.lock().unwrap().push(FlightDump { reason: reason.to_string(), events });
    }

    /// All flight dumps captured so far, oldest first.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().unwrap().clone()
    }

    /// The metrics registry (spans and points also feed it
    /// automatically: `point.<name>` counters, `span.<name>.count`
    /// counters, `span.<name>.us` histograms).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Serialize the bus state a deterministic resume depends on: the
    /// config, `next_seq`, the full event log, the flight ring, and
    /// every captured dump. The thread→worker-id map is deliberately
    /// *not* saved — dense ids are assigned in first-emission order,
    /// so the restoring process's emitting thread re-acquires the same
    /// dense id the original's did. The metrics registry is not part
    /// of the byte-compared surface (`render()` covers events only)
    /// and is left to re-accumulate.
    pub fn save_state(&self, w: &mut ctb_savestate::Writer) {
        use ctb_savestate::Savestate as _;
        w.len_prefix(self.cfg.ring_capacity);
        w.bool(self.cfg.record_log);
        let inner = self.inner.lock().unwrap();
        w.u64(inner.next_seq);
        w.len_prefix(inner.events.len());
        for e in &inner.events {
            e.save(w);
        }
        w.len_prefix(inner.ring.len());
        for e in &inner.ring {
            e.save(w);
        }
        drop(inner);
        let dumps = self.dumps.lock().unwrap();
        w.len_prefix(dumps.len());
        for d in dumps.iter() {
            w.str(&d.reason);
            w.len_prefix(d.events.len());
            for e in &d.events {
                e.save(w);
            }
        }
    }

    /// Overwrite this bus's state with a blob written by
    /// [`Obs::save_state`]. The receiving bus must have been built
    /// with the same config (typed `Mismatch` otherwise). Events
    /// emitted on this bus before the restore — e.g. by plan-cache
    /// rebuilding during an engine restore — are discarded wholesale,
    /// which is why engine restores apply the obs blob *last*.
    pub fn restore_state(
        &self,
        r: &mut ctb_savestate::Reader<'_>,
    ) -> Result<(), ctb_savestate::SavestateError> {
        use ctb_savestate::{Savestate as _, SavestateError};
        let ring_capacity = r.len_prefix()?;
        let record_log = r.bool()?;
        if ring_capacity != self.cfg.ring_capacity || record_log != self.cfg.record_log {
            return Err(SavestateError::Mismatch(format!(
                "obs config differs: blob (ring {ring_capacity}, log {record_log}) vs \
                 bus (ring {}, log {})",
                self.cfg.ring_capacity, self.cfg.record_log
            )));
        }
        let next_seq = r.u64()?;
        let events = r.seq(Event::load)?;
        let ring = r.seq(Event::load)?;
        if ring.len() > ring_capacity {
            return Err(SavestateError::Corrupt(format!(
                "flight ring holds {} events, capacity {ring_capacity}",
                ring.len()
            )));
        }
        let dumps = r.seq(|r| {
            let reason = r.str()?;
            let events = r.seq(Event::load)?;
            Ok(FlightDump { reason, events })
        })?;
        let mut inner = self.inner.lock().unwrap();
        inner.next_seq = next_seq;
        inner.events = events;
        inner.ring = ring.into();
        inner.workers.clear();
        drop(inner);
        *self.dumps.lock().unwrap() = dumps;
        Ok(())
    }
}

/// Open span handle. Prefer [`finish`](Self::finish) — it returns the
/// exact (begin, end) microsecond pair so callers can report durations
/// that reconcile with the trace to the bit. Dropping the guard —
/// including during a panic's unwind — closes the span too, so the
/// audit's "every span closed" invariant survives `catch_unwind`
/// seams.
pub struct SpanGuard<'a> {
    obs: &'a Obs,
    kind: SpanKind,
    id: u64,
    begin_us: u64,
    done: bool,
}

impl SpanGuard<'_> {
    /// The span id (`SpanBegin` event's seq) — what `Respond` terminal
    /// events reference as `batch`.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn begin_us(&self) -> u64 {
        self.begin_us
    }

    /// Close the span; returns (begin_us, end_us) from the bus clock.
    pub fn finish(mut self) -> (u64, u64) {
        self.done = true;
        let end = self.obs.end_span(self.kind, self.id, self.begin_us);
        (self.begin_us, end)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.obs.end_span(self.kind, self.id, self.begin_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_events_when_nothing_emitted() {
        let obs = Obs::wall();
        assert!(obs.events().is_empty());
        assert!(obs.flight_dumps().is_empty());
        assert_eq!(obs.render(), "");
    }

    #[test]
    fn span_ids_match_begin_seq_and_metrics_follow() {
        let obs = Obs::wall();
        let g = obs.span(SpanKind::Plan);
        assert_eq!(g.id(), 0);
        let (b, e) = g.finish();
        assert!(e >= b);
        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanBegin { span: SpanKind::Plan, id: 0 });
        assert_eq!(events[1].kind, EventKind::SpanEnd { span: SpanKind::Plan, id: 0 });
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter("span.plan.count"), 1);
        assert_eq!(snap.histograms["span.plan.us"].count(), 1);
    }

    #[test]
    fn dropped_guard_still_closes_the_span() {
        let obs = Obs::wall();
        {
            let _g = obs.span(SpanKind::Exec);
        }
        let audit = TraceAudit::new(obs.events()).check().expect("drop closed the span");
        assert_eq!(audit.span_count(SpanKind::Exec), 1);
    }

    #[test]
    fn unwinding_past_a_guard_closes_the_span() {
        let obs = Obs::wall();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = obs.span(SpanKind::Exec);
            panic!("boom");
        }));
        assert!(caught.is_err());
        TraceAudit::new(obs.events()).check().expect("unwind closed the span");
    }

    #[test]
    fn point_returns_clock_time_and_counts() {
        let clock = Arc::new(SimClock::new());
        let obs = Obs::sim(Arc::clone(&clock));
        clock.advance(500);
        let t = obs.point(PointKind::Reject { req: None });
        assert_eq!(t, 500);
        assert_eq!(obs.metrics().snapshot().counter("point.reject"), 1);
    }

    #[test]
    fn flight_ring_is_bounded_and_dumps_latest() {
        let clock = Arc::new(SimClock::new());
        let obs = Obs::with_clock(clock, ObsConfig { ring_capacity: 4, record_log: true });
        for i in 0..10u64 {
            obs.point(PointKind::Admit { req: i });
        }
        obs.dump_flight("test");
        let dumps = obs.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "test");
        assert_eq!(dumps[0].events.len(), 4, "ring bounded at capacity");
        let seqs: Vec<u64> = dumps[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "latest events, oldest first");
        assert!(dumps[0].render().contains("flight recorder dump (test): 4 events"));
    }

    #[test]
    fn sim_clock_traces_are_byte_identical() {
        let run = || {
            let clock = Arc::new(SimClock::new());
            let obs = Obs::sim(Arc::clone(&clock));
            obs.point(PointKind::Admit { req: 1 });
            clock.advance(100);
            let g = obs.span(SpanKind::Exec);
            clock.advance(50);
            let (b, e) = g.finish();
            obs.point(PointKind::Respond {
                req: 1,
                batch: 1,
                degraded: false,
                abandoned: false,
                queue_us: 100.0,
                plan_us: 0.0,
                exec_us: (e - b) as f64,
                total_us: 150.0,
            });
            obs.render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn save_restore_resumes_byte_identical_traces() {
        // Two buses run the same scripted workload; one is checkpointed
        // mid-script and restored into a fresh bus which finishes the
        // script. Final renders must agree byte-for-byte.
        let script_prefix = |obs: &Obs, clock: &SimClock| {
            obs.point(PointKind::Admit { req: 1 });
            clock.advance(100);
            let g = obs.span(SpanKind::Exec);
            clock.advance(50);
            g.finish();
            obs.dump_flight("mid-script dump");
        };
        let script_suffix = |obs: &Obs, clock: &SimClock| {
            clock.advance(25);
            obs.point(PointKind::BatchDone { req: 1, device: 0, degraded: false, abandoned: false });
        };

        let clock_a = Arc::new(SimClock::new());
        let a = Obs::sim(Arc::clone(&clock_a));
        script_prefix(&a, &clock_a);
        script_suffix(&a, &clock_a);

        let clock_b = Arc::new(SimClock::new());
        let b = Obs::sim(Arc::clone(&clock_b));
        script_prefix(&b, &clock_b);
        let mut w = ctb_savestate::Writer::new();
        b.save_state(&mut w);
        let bytes = w.into_bytes();

        let clock_c = Arc::new(SimClock::new());
        let c = Obs::sim(Arc::clone(&clock_c));
        // Pollution emitted before the restore is discarded by it.
        c.point(PointKind::PlanCacheMiss);
        let mut r = ctb_savestate::Reader::new(&bytes);
        c.restore_state(&mut r).unwrap();
        r.expect_end().unwrap();
        clock_c.set(clock_b.now_us());
        script_suffix(&c, &clock_c);

        assert_eq!(c.render(), a.render(), "resumed trace is byte-identical");
        assert_eq!(c.flight_dumps().len(), 1);
        assert_eq!(c.flight_dumps()[0].render(), a.flight_dumps()[0].render());
    }

    #[test]
    fn restore_rejects_config_mismatch_and_corrupt_rings() {
        let a = Obs::with_clock(Arc::new(SimClock::new()), ObsConfig { ring_capacity: 4, record_log: true });
        a.point(PointKind::PanicCaught);
        let mut w = ctb_savestate::Writer::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        let wrong_cfg = Obs::with_clock(Arc::new(SimClock::new()), ObsConfig { ring_capacity: 8, record_log: true });
        assert!(matches!(
            wrong_cfg.restore_state(&mut ctb_savestate::Reader::new(&bytes)),
            Err(ctb_savestate::SavestateError::Mismatch(_))
        ));

        // Truncation surfaces as Corrupt, never a panic.
        let same_cfg = Obs::with_clock(Arc::new(SimClock::new()), ObsConfig { ring_capacity: 4, record_log: true });
        assert!(matches!(
            same_cfg.restore_state(&mut ctb_savestate::Reader::new(&bytes[..bytes.len() - 3])),
            Err(ctb_savestate::SavestateError::Corrupt(_))
        ));
    }

    #[test]
    fn record_log_off_keeps_ring_but_not_log() {
        let obs = Obs::with_clock(
            Arc::new(WallClock::new()),
            ObsConfig { ring_capacity: 8, record_log: false },
        );
        obs.point(PointKind::Reject { req: None });
        assert!(obs.events().is_empty());
        obs.dump_flight("x");
        assert_eq!(obs.flight_dumps()[0].events.len(), 1);
    }
}

//! Flight recorder: a bounded ring of the most recent events, dumped
//! when something goes wrong (worker panic, breaker trip) so a chaos
//! failure arrives with its last-N-events context attached.

use crate::event::Event;

/// One captured ring: the reason it was dumped plus the events that
/// were in the ring at that instant, oldest first.
#[derive(Debug, Clone)]
pub struct FlightDump {
    pub reason: String,
    pub events: Vec<Event>,
}

impl FlightDump {
    /// Human-readable rendering for panic messages and logs.
    pub fn render(&self) -> String {
        let mut out = format!("flight recorder dump ({}): {} events\n", self.reason, self.events.len());
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

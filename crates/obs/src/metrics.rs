//! Metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Everything is keyed by string in `BTreeMap`s so snapshots iterate in
//! a stable order — the JSON export is deterministic without any
//! sorting pass, which is what the `BENCH_obs.json` schema gate in
//! `scripts/check.sh` relies on.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets. Bucket 0 holds everything `<= 1.0`
/// (including negatives, zeros, subnormals, and negative NaN); buckets
/// `1..=62` hold `(2^(i-1), 2^i]`; bucket 63 holds `+inf` / positive
/// NaN and any finite overflow past `2^62`.
pub const HIST_BUCKETS: usize = 64;

/// Fixed power-of-two-bucket histogram over `f64` samples.
///
/// The bucket function is monotone non-decreasing under
/// [`f64::total_cmp`] ordering, which gives the oracle property the
/// property tests pin down: for any sample stream,
/// `percentile(q) == upper_edge(bucket_of(x))` where `x` is the
/// nearest-rank element of the `total_cmp`-sorted stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    /// Sum in insertion order (bit-exact reproducible for a fixed
    /// stream, NaN-propagating like any f64 accumulation).
    sum: f64,
    /// Smallest / largest observed sample under `total_cmp`.
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0.0, min: f64::NAN, max: f64::NAN }
    }

    /// Bucket index for a sample. Total order: negative NaN sorts below
    /// everything (`total_cmp`), so it lands in bucket 0 with the rest
    /// of the `<= 1.0` mass; positive NaN sorts above `+inf` and lands
    /// in the last bucket.
    pub fn bucket_of(v: f64) -> usize {
        if v.is_nan() {
            return if v.is_sign_negative() { 0 } else { HIST_BUCKETS - 1 };
        }
        if v <= 1.0 {
            return 0;
        }
        if v == f64::INFINITY {
            return HIST_BUCKETS - 1;
        }
        // v > 1.0 finite: exponent e >= 0, v in [2^e, 2^(e+1)).
        // Exact powers of two belong to the bucket they close,
        // everything else to the next one up: (2^(i-1), 2^i] -> i.
        let bits = v.to_bits();
        let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
        let fraction = bits & ((1u64 << 52) - 1);
        let idx = if fraction == 0 { e } else { e + 1 };
        (idx as usize).clamp(1, HIST_BUCKETS - 2)
    }

    /// Inclusive upper edge of a bucket — the value `percentile`
    /// reports for samples that fell in it.
    pub fn upper_edge(idx: usize) -> f64 {
        if idx == 0 {
            1.0
        } else if idx >= HIST_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (idx as u32 as f64).exp2()
        }
    }

    pub fn observe(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.sum += v;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v.total_cmp(&self.min).is_lt() {
                self.min = v;
            }
            if v.total_cmp(&self.max).is_gt() {
                self.max = v;
            }
        }
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed sample under `total_cmp`; NaN when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed sample under `total_cmp`; NaN when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Nearest-rank percentile, reported as the upper edge of the
    /// bucket holding the ranked sample (same rank convention as
    /// `ServeStats::percentile`: `rank = ceil(q * n)` clamped to
    /// `[1, n]`). Returns 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::upper_edge(i);
            }
        }
        Self::upper_edge(HIST_BUCKETS - 1)
    }

    /// Element-wise merge (counts add, min/max combine, sums add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                if other.min.total_cmp(&self.min).is_lt() {
                    self.min = other.min;
                }
                if other.max.total_cmp(&self.max).is_gt() {
                    self.max = other.max;
                }
            }
        }
        self.count += other.count;
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry. One mutex: metric updates are rare relative
/// to the arithmetic they measure, and a single lock keeps snapshots
/// atomic (a snapshot never shows a counter from before an update and
/// a histogram from after it).
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().unwrap();
        *m.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut m = self.inner.lock().unwrap();
        m.gauges.insert(name.to_string(), value);
    }

    pub fn observe(&self, name: &str, value: f64) {
        let mut m = self.inner.lock().unwrap();
        m.histograms.entry(name.to_string()).or_default().observe(value);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: m.counters.clone(),
            gauges: m.gauges.clone(),
            histograms: m.histograms.clone(),
        }
    }
}

/// Point-in-time copy of a [`Metrics`] registry. Mergeable so
/// multi-device / multi-server runs can be combined into one export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold another snapshot into this one: counters add, gauges take
    /// the other's value (last writer wins), histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counter value, 0 when absent (fixed-schema exports read every
    /// expected key through this).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Stable JSON rendering (BTreeMap order; no external dependency).
    pub fn to_json(&self) -> String {
        fn fmt_f64(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                // JSON has no inf/nan literals; null keeps parsers alive.
                "null".to_string()
            }
        }
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{k}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{k}\": {}", fmt_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{k}\": {{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {} }}",
                h.count(),
                fmt_f64(h.sum()),
                fmt_f64(h.min()),
                fmt_f64(h.max()),
                fmt_f64(h.percentile(0.50)),
                fmt_f64(h.percentile(0.95)),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers() {
        assert_eq!(Histogram::bucket_of(0.5), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        assert_eq!(Histogram::bucket_of(1.0000001), 1);
        assert_eq!(Histogram::bucket_of(2.0), 1);
        assert_eq!(Histogram::bucket_of(2.0000001), 2);
        assert_eq!(Histogram::bucket_of(4.0), 2);
        assert_eq!(Histogram::bucket_of(1024.0), 10);
        assert_eq!(Histogram::bucket_of(1025.0), 11);
    }

    #[test]
    fn bucket_handles_edge_values() {
        assert_eq!(Histogram::bucket_of(-0.0), 0);
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::MIN_POSITIVE / 2.0), 0, "subnormal");
        assert_eq!(Histogram::bucket_of(-1e300), 0);
        assert_eq!(Histogram::bucket_of(f64::NEG_INFINITY), 0);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(f64::NAN), HIST_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(-f64::NAN), 0, "negative NaN sorts below all");
        assert_eq!(Histogram::bucket_of(f64::MAX), HIST_BUCKETS - 2, "finite overflow clamps");
    }

    #[test]
    fn bucket_is_monotone_under_total_cmp() {
        let mut probes = vec![
            -f64::NAN,
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 4.0,
            0.5,
            1.0,
            1.5,
            2.0,
            3.0,
            1024.0,
            1e9,
            f64::MAX,
            f64::INFINITY,
            f64::NAN,
        ];
        probes.sort_by(|a, b| a.total_cmp(b));
        let idx: Vec<usize> = probes.iter().map(|&v| Histogram::bucket_of(v)).collect();
        assert!(idx.windows(2).all(|w| w[0] <= w[1]), "non-monotone buckets: {idx:?}");
    }

    #[test]
    fn percentile_matches_rank_convention() {
        let mut h = Histogram::new();
        for v in [3.0, 10.0, 100.0, 1000.0] {
            h.observe(v);
        }
        // Ranks: p50 -> 2nd element (10.0, bucket 4, edge 16), p95 ->
        // 4th (1000.0, bucket 10, edge 1024).
        assert_eq!(h.percentile(0.50), 16.0);
        assert_eq!(h.percentile(0.95), 1024.0);
        assert_eq!(h.percentile(0.0), Histogram::upper_edge(Histogram::bucket_of(3.0)));
        assert_eq!(Histogram::new().percentile(0.5), 0.0);
    }

    #[test]
    fn merge_combines_exactly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1.0, 5.0] {
            a.observe(v);
        }
        for v in [200.0, -3.0] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1.0 + 5.0 + 200.0 + -3.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.max(), 200.0);
    }

    #[test]
    fn registry_snapshot_and_merge() {
        let m = Metrics::new();
        m.inc("a");
        m.add("a", 2);
        m.set_gauge("g", 1.5);
        m.observe("h", 42.0);
        let mut s1 = m.snapshot();
        assert_eq!(s1.counter("a"), 3);
        assert_eq!(s1.counter("missing"), 0);
        let m2 = Metrics::new();
        m2.inc("a");
        m2.inc("b");
        m2.observe("h", 7.0);
        s1.merge(&m2.snapshot());
        assert_eq!(s1.counter("a"), 4);
        assert_eq!(s1.counter("b"), 1);
        assert_eq!(s1.histograms["h"].count(), 2);
        let json = s1.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"p95\""));
    }
}

//! Trace-driven whole-system invariant auditing.
//!
//! [`TraceAudit`] consumes a recorded event log and checks the
//! structural invariants every correct run must satisfy, regardless of
//! scheduling, faults, or batching decisions:
//!
//! 1. `seq` strictly increasing and timestamps non-decreasing (the bus
//!    assigns both under one lock from a monotonic clock).
//! 2. Per-worker span-stack discipline: spans nest and never overlap
//!    on a worker; every `SpanEnd` matches the innermost open span.
//! 3. Every opened span is closed by the end of the trace (the
//!    panic-safe `SpanGuard` drop guarantees this even on unwind).
//! 4. Terminal uniqueness: every admitted request reaches *exactly
//!    one* terminal event (`Respond` / `Expired` / `Failed` /
//!    `BatchDone`), and no terminal names an unadmitted request.
//! 5. Timing additivity: every `Respond` satisfies
//!    `queue_us + plan_us + exec_us == total_us` exactly (`==`, not ≈).
//! 6. Span linkage: every non-degraded `Respond` references a closed
//!    `Exec` span (degraded ones a `DegradedExec` span) whose measured
//!    duration equals the reported `exec_us` exactly.
//!
//! On success it returns [`TraceCounts`] — one exact tally per point
//! kind — which the chaos suites compare `==` against `ServeStats`,
//! `ClusterStats`, and `FaultLog`.

use crate::event::{Event, EventKind, PointKind, SpanKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Exact tallies of every point kind in a trace (plus span counts),
/// produced by a successful [`TraceAudit::check`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCounts {
    pub admits: usize,
    pub rejects: usize,
    /// Rejects that closed an already-admitted request (post-`Admit`
    /// queue-full/closed bounce) — a terminal flavour.
    pub rejects_admitted: usize,
    pub retries: usize,
    pub panics_caught: usize,
    pub plan_failures: usize,
    pub breaker_trips: usize,
    pub batches: usize,
    /// Sum of `BatchExecuted::size` over the trace.
    pub batch_members: usize,
    pub responds: usize,
    pub responds_degraded: usize,
    pub responds_abandoned: usize,
    pub expired: usize,
    pub expired_abandoned: usize,
    pub failed: usize,
    pub failed_abandoned: usize,
    pub plan_cache_hits: usize,
    pub plan_cache_misses: usize,
    /// Inserts turned away by the Bloom admission gate (each one also
    /// counted in `plan_cache_misses`).
    pub plan_cache_denied: usize,
    pub routed: usize,
    pub steals: usize,
    pub reroutes: usize,
    pub kills: usize,
    pub batch_done: usize,
    pub batch_done_degraded: usize,
    pub batch_done_abandoned: usize,
    /// Placements (and steals) that landed on the operand-resident device.
    pub residency_hits: usize,
    /// Placements (and steals) that staged operands onto a new device.
    pub residency_misses: usize,
    /// Completed span count per kind name.
    pub spans: BTreeMap<&'static str, usize>,
}

impl TraceCounts {
    /// Terminal events across all flavours.
    pub fn terminals(&self) -> usize {
        self.responds + self.expired + self.failed + self.batch_done + self.rejects_admitted
    }

    /// Requests whose ticket receiver was dropped before delivery.
    pub fn abandoned(&self) -> usize {
        self.responds_abandoned
            + self.expired_abandoned
            + self.failed_abandoned
            + self.batch_done_abandoned
    }

    /// Completed spans of one kind (0 when none).
    pub fn span_count(&self, kind: SpanKind) -> usize {
        self.spans.get(kind.name()).copied().unwrap_or(0)
    }
}

struct ClosedSpan {
    kind: SpanKind,
    begin_us: u64,
    end_us: u64,
}

/// Auditor over one recorded trace. Build with the events from
/// [`Obs::events`](crate::Obs::events), then [`check`](Self::check).
pub struct TraceAudit {
    events: Vec<Event>,
}

impl TraceAudit {
    pub fn new(events: Vec<Event>) -> Self {
        TraceAudit { events }
    }

    /// Run every invariant; the error string names the first violated
    /// invariant and the offending event.
    pub fn check(&self) -> Result<TraceCounts, String> {
        let mut counts = TraceCounts::default();
        let mut stacks: HashMap<u32, Vec<(SpanKind, u64)>> = HashMap::new();
        let mut open_spans: HashMap<u64, (SpanKind, u64)> = HashMap::new();
        let mut closed_spans: HashMap<u64, ClosedSpan> = HashMap::new();
        let mut admitted: HashSet<u64> = HashSet::new();
        let mut terminated: HashMap<u64, usize> = HashMap::new();
        // Deferred: a Respond may be recorded before its Exec span's
        // SpanEnd reaches the log in odd interleavings; verify linkage
        // after the full scan.
        let mut linkage: Vec<(u64, u64, bool, f64)> = Vec::new();

        let mut prev_seq: Option<u64> = None;
        let mut prev_t: Option<u64> = None;
        for e in &self.events {
            if let Some(p) = prev_seq {
                if e.seq <= p {
                    return Err(format!("seq not strictly increasing at {}", e.render()));
                }
            }
            prev_seq = Some(e.seq);
            if let Some(t) = prev_t {
                if e.t_us < t {
                    return Err(format!("timestamp went backwards at {}", e.render()));
                }
            }
            prev_t = Some(e.t_us);

            match e.kind {
                EventKind::SpanBegin { span, id } => {
                    if open_spans.insert(id, (span, e.t_us)).is_some() {
                        return Err(format!("span id {id} opened twice at {}", e.render()));
                    }
                    stacks.entry(e.worker).or_default().push((span, id));
                }
                EventKind::SpanEnd { span, id } => {
                    let stack = stacks.entry(e.worker).or_default();
                    match stack.pop() {
                        Some((top_kind, top_id)) if top_kind == span && top_id == id => {}
                        Some((top_kind, top_id)) => {
                            return Err(format!(
                                "span overlap on worker {}: end of {:?}#{id} but innermost open is {:?}#{top_id}",
                                e.worker, span, top_kind
                            ));
                        }
                        None => {
                            return Err(format!(
                                "span end without begin on worker {} at {}",
                                e.worker,
                                e.render()
                            ));
                        }
                    }
                    let (_, begin_us) = open_spans
                        .remove(&id)
                        .ok_or_else(|| format!("span end for unknown id at {}", e.render()))?;
                    closed_spans
                        .insert(id, ClosedSpan { kind: span, begin_us, end_us: e.t_us });
                    *counts.spans.entry(span.name()).or_insert(0) += 1;
                }
                EventKind::Point(p) => {
                    Self::tally(&mut counts, &p);
                    match p {
                        PointKind::Admit { req } if !admitted.insert(req) => {
                            return Err(format!("request {req} admitted twice"));
                        }
                        PointKind::Admit { .. } => {}
                        PointKind::Respond {
                            req,
                            batch,
                            degraded,
                            queue_us,
                            plan_us,
                            exec_us,
                            total_us,
                            ..
                        } => {
                            *terminated.entry(req).or_insert(0) += 1;
                            if queue_us + plan_us + exec_us != total_us {
                                return Err(format!(
                                    "timing not additive for request {req}: {queue_us} + {plan_us} + {exec_us} != {total_us}"
                                ));
                            }
                            linkage.push((req, batch, degraded, exec_us));
                        }
                        PointKind::Expired { req, .. } | PointKind::Failed { req, .. } => {
                            *terminated.entry(req).or_insert(0) += 1;
                        }
                        PointKind::Reject { req: Some(req) } => {
                            *terminated.entry(req).or_insert(0) += 1;
                        }
                        PointKind::BatchDone { req, .. } => {
                            *terminated.entry(req).or_insert(0) += 1;
                        }
                        _ => {}
                    }
                }
            }
        }

        for (worker, stack) in &stacks {
            if let Some((kind, id)) = stack.last() {
                return Err(format!("span {kind:?}#{id} left open on worker {worker}"));
            }
        }

        for (req, n) in &terminated {
            if !admitted.contains(req) {
                return Err(format!("terminal event for unadmitted request {req}"));
            }
            if *n != 1 {
                return Err(format!("request {req} has {n} terminal events, expected 1"));
            }
        }
        for req in &admitted {
            if !terminated.contains_key(req) {
                return Err(format!("admitted request {req} has no terminal event"));
            }
        }

        for (req, batch, degraded, exec_us) in &linkage {
            let span = closed_spans
                .get(batch)
                .ok_or_else(|| format!("request {req} responds from unknown span id {batch}"))?;
            let want = if *degraded { SpanKind::DegradedExec } else { SpanKind::Exec };
            if span.kind != want {
                return Err(format!(
                    "request {req} (degraded={degraded}) linked to a {:?} span, expected {want:?}",
                    span.kind
                ));
            }
            let dur = (span.end_us - span.begin_us) as f64;
            if dur != *exec_us {
                return Err(format!(
                    "request {req}: exec span #{batch} lasted {dur}us but response reports {exec_us}us"
                ));
            }
        }

        Ok(counts)
    }

    fn tally(c: &mut TraceCounts, p: &PointKind) {
        match p {
            PointKind::Admit { .. } => c.admits += 1,
            PointKind::Reject { req } => {
                c.rejects += 1;
                if req.is_some() {
                    c.rejects_admitted += 1;
                }
            }
            PointKind::Retry { .. } => c.retries += 1,
            PointKind::PanicCaught => c.panics_caught += 1,
            PointKind::PlanFailure => c.plan_failures += 1,
            PointKind::BreakerTrip => c.breaker_trips += 1,
            PointKind::BatchExecuted { size } => {
                c.batches += 1;
                c.batch_members += size;
            }
            PointKind::Respond { degraded, abandoned, .. } => {
                c.responds += 1;
                if *degraded {
                    c.responds_degraded += 1;
                }
                if *abandoned {
                    c.responds_abandoned += 1;
                }
            }
            PointKind::Expired { abandoned, .. } => {
                c.expired += 1;
                if *abandoned {
                    c.expired_abandoned += 1;
                }
            }
            PointKind::Failed { abandoned, .. } => {
                c.failed += 1;
                if *abandoned {
                    c.failed_abandoned += 1;
                }
            }
            PointKind::PlanCacheHit => c.plan_cache_hits += 1,
            PointKind::PlanCacheMiss => c.plan_cache_misses += 1,
            PointKind::PlanCacheDenied => c.plan_cache_denied += 1,
            PointKind::Routed { .. } => c.routed += 1,
            PointKind::Steal { .. } => c.steals += 1,
            PointKind::Reroute { .. } => c.reroutes += 1,
            PointKind::Kill { .. } => c.kills += 1,
            PointKind::BatchDone { degraded, abandoned, .. } => {
                c.batch_done += 1;
                if *degraded {
                    c.batch_done_degraded += 1;
                }
                if *abandoned {
                    c.batch_done_abandoned += 1;
                }
            }
            PointKind::ResidencyHit { .. } => c.residency_hits += 1,
            PointKind::ResidencyMiss { .. } => c.residency_misses += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, worker: u32, kind: EventKind) -> Event {
        Event { seq, t_us, worker, kind }
    }

    /// A minimal healthy serve trace: admit -> coalesce -> plan ->
    /// exec -> respond, with exact timing linkage.
    fn healthy_trace() -> Vec<Event> {
        use EventKind::*;
        vec![
            ev(0, 10, 0, Point(PointKind::Admit { req: 1 })),
            ev(1, 12, 1, SpanBegin { span: SpanKind::Coalesce, id: 1 }),
            ev(2, 20, 1, SpanEnd { span: SpanKind::Coalesce, id: 1 }),
            ev(3, 21, 2, SpanBegin { span: SpanKind::Plan, id: 3 }),
            ev(4, 30, 2, SpanEnd { span: SpanKind::Plan, id: 3 }),
            ev(5, 30, 2, SpanBegin { span: SpanKind::Exec, id: 5 }),
            ev(6, 80, 2, SpanEnd { span: SpanKind::Exec, id: 5 }),
            ev(7, 80, 2, Point(PointKind::BatchExecuted { size: 1 })),
            ev(
                8,
                81,
                2,
                Point(PointKind::Respond {
                    req: 1,
                    batch: 5,
                    degraded: false,
                    abandoned: false,
                    queue_us: 11.0,
                    plan_us: 9.0,
                    exec_us: 50.0,
                    total_us: 70.0,
                }),
            ),
        ]
    }

    #[test]
    fn healthy_trace_passes_and_tallies() {
        let counts = TraceAudit::new(healthy_trace()).check().expect("healthy trace audits clean");
        assert_eq!(counts.admits, 1);
        assert_eq!(counts.responds, 1);
        assert_eq!(counts.terminals(), 1);
        assert_eq!(counts.abandoned(), 0);
        assert_eq!(counts.batches, 1);
        assert_eq!(counts.batch_members, 1);
        assert_eq!(counts.span_count(SpanKind::Exec), 1);
        assert_eq!(counts.span_count(SpanKind::Plan), 1);
        assert_eq!(counts.span_count(SpanKind::Place), 0);
    }

    #[test]
    fn dropped_terminal_event_is_caught() {
        // The acceptance-criteria negative test: corrupt a valid trace
        // by deleting its terminal event; the audit must flag the
        // admitted request as unterminated.
        let mut trace = healthy_trace();
        trace.pop();
        let err = TraceAudit::new(trace).check().expect_err("corrupted trace must fail");
        assert!(err.contains("no terminal event"), "unexpected error: {err}");
    }

    #[test]
    fn duplicate_terminal_is_caught() {
        let mut trace = healthy_trace();
        let mut dup = trace[8];
        dup.seq = 9;
        trace.push(dup);
        let err = TraceAudit::new(trace).check().expect_err("duplicate terminal must fail");
        assert!(err.contains("terminal events"), "unexpected error: {err}");
    }

    #[test]
    fn terminal_for_unadmitted_request_is_caught() {
        let mut trace = healthy_trace();
        trace[0] = ev(0, 10, 0, EventKind::Point(PointKind::Admit { req: 99 }));
        trace.push(ev(9, 90, 0, EventKind::Point(PointKind::Expired { req: 99, abandoned: false })));
        let err = TraceAudit::new(trace).check().expect_err("must fail");
        assert!(err.contains("unadmitted"), "unexpected error: {err}");
    }

    #[test]
    fn overlapping_spans_are_caught() {
        use EventKind::*;
        let trace = vec![
            ev(0, 0, 0, SpanBegin { span: SpanKind::Plan, id: 0 }),
            ev(1, 1, 0, SpanBegin { span: SpanKind::Exec, id: 1 }),
            // Ends the outer span while the inner is still open.
            ev(2, 2, 0, SpanEnd { span: SpanKind::Plan, id: 0 }),
            ev(3, 3, 0, SpanEnd { span: SpanKind::Exec, id: 1 }),
        ];
        let err = TraceAudit::new(trace).check().expect_err("overlap must fail");
        assert!(err.contains("overlap"), "unexpected error: {err}");
    }

    #[test]
    fn unclosed_span_is_caught() {
        use EventKind::*;
        let trace = vec![ev(0, 0, 0, SpanBegin { span: SpanKind::Exec, id: 0 })];
        let err = TraceAudit::new(trace).check().expect_err("open span must fail");
        assert!(err.contains("left open"), "unexpected error: {err}");
    }

    #[test]
    fn non_additive_timing_is_caught() {
        let mut trace = healthy_trace();
        if let EventKind::Point(PointKind::Respond { total_us, .. }) = &mut trace[8].kind {
            *total_us += 1.0;
        }
        let err = TraceAudit::new(trace).check().expect_err("bad timing must fail");
        assert!(err.contains("not additive"), "unexpected error: {err}");
    }

    #[test]
    fn exec_span_duration_mismatch_is_caught() {
        let mut trace = healthy_trace();
        if let EventKind::Point(PointKind::Respond { exec_us, queue_us, .. }) = &mut trace[8].kind {
            // Keep the sum additive but break the span linkage.
            *exec_us += 1.0;
            *queue_us -= 1.0;
        }
        let err = TraceAudit::new(trace).check().expect_err("span mismatch must fail");
        assert!(err.contains("lasted"), "unexpected error: {err}");
    }

    #[test]
    fn respond_linked_to_wrong_span_kind_is_caught() {
        let mut trace = healthy_trace();
        if let EventKind::Point(PointKind::Respond { batch, .. }) = &mut trace[8].kind {
            *batch = 3; // the Plan span
        }
        let err = TraceAudit::new(trace).check().expect_err("wrong span kind must fail");
        assert!(err.contains("expected Exec"), "unexpected error: {err}");
    }

    #[test]
    fn non_monotonic_seq_is_caught() {
        let mut trace = healthy_trace();
        trace[3].seq = 1;
        let err = TraceAudit::new(trace).check().expect_err("seq regression must fail");
        assert!(err.contains("seq"), "unexpected error: {err}");
    }
}

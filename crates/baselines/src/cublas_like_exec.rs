//! A cuBLAS-`cublasSgemmBatched`-like baseline: GEMMs with identical
//! (M, N, K) are merged into one uniform batched kernel; each distinct
//! shape still needs its own launch — the API's defining restriction
//! (§1: "it can only batch the GEMMs with the same size").

use crate::run::{functional_plan, gemm_tiles, BaselineRun};
use ctb_batching::TileTask;
use ctb_core::lowering::block_work;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::{KernelDesc, LaunchSequence};
use ctb_tiling::select_single_gemm;

/// Batch same-size groups into uniform kernels, launched serially.
pub fn cublas_like(arch: &ArchSpec, shapes: &[GemmShape]) -> BaselineRun {
    // Group indices by shape, preserving first-seen order.
    let mut groups: Vec<(GemmShape, Vec<usize>)> = Vec::new();
    for (g, shape) in shapes.iter().enumerate() {
        match groups.iter_mut().find(|(s, _)| s == shape) {
            Some((_, idx)) => idx.push(g),
            None => groups.push((*shape, vec![g])),
        }
    }

    let mut kernels = Vec::with_capacity(groups.len());
    let mut all_tiles: Vec<TileTask> = Vec::new();
    for (shape, members) in &groups {
        let st = select_single_gemm(shape, arch);
        let mut blocks = Vec::new();
        for &g in members {
            // gridDim.z stacking: every member contributes a full grid.
            for t in gemm_tiles(g, shape, st) {
                blocks.push(block_work(std::slice::from_ref(&t), st.threads, shapes));
                all_tiles.push(t);
            }
        }
        kernels.push(KernelDesc::new(
            format!("cublas_batched_{shape}_x{}", members.len()),
            st.footprint(),
            blocks,
        ));
    }

    BaselineRun {
        name: "cublas_like",
        seq: LaunchSequence::Serial(kernels),
        functional: functional_plan(&all_tiles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exec::default_serial;
    use crate::run::{execute_baseline, simulate_baseline};
    use ctb_matrix::{assert_all_close, GemmBatch};

    #[test]
    fn uniform_batch_needs_one_launch() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(64, 64, 64); 8];
        let run = cublas_like(&arch, &shapes);
        assert_eq!(run.seq.kernels().len(), 1);
    }

    #[test]
    fn mixed_batch_needs_one_launch_per_distinct_shape() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![
            GemmShape::new(64, 64, 64),
            GemmShape::new(32, 32, 32),
            GemmShape::new(64, 64, 64),
            GemmShape::new(128, 128, 16),
        ];
        let run = cublas_like(&arch, &shapes);
        assert_eq!(run.seq.kernels().len(), 3);
    }

    #[test]
    fn beats_default_on_uniform_small_batches() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(64, 64, 64); 16];
        let d = simulate_baseline(&arch, &default_serial(&arch, &shapes));
        let c = simulate_baseline(&arch, &cublas_like(&arch, &shapes));
        assert!(c.total_us < d.total_us, "cublas {} vs default {}", c.total_us, d.total_us);
    }

    #[test]
    fn results_match_reference() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![
            GemmShape::new(33, 65, 20),
            GemmShape::new(33, 65, 20),
            GemmShape::new(80, 16, 48),
        ];
        let batch = GemmBatch::random(&shapes, 1.25, -0.5, 13);
        let (results, _) = execute_baseline(&arch, &batch, &cublas_like(&arch, &shapes));
        assert_all_close(&batch.reference_result(), &results, 2e-4);
    }
}

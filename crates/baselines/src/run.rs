//! Shared plumbing for the baselines: the run descriptor, the
//! functional-plan construction, and the execute/simulate entry points.

use ctb_batching::{BatchPlan, TileTask};
use ctb_core::interface::execute_plan;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::{GemmBatch, GemmShape, MatF32};
use ctb_sim::{simulate, LaunchSequence, SimReport};
use ctb_tiling::strategy::{batched, ThreadCount};
use ctb_tiling::TilingStrategy;

/// One baseline execution: how it reaches the device, plus an equivalent
/// functional plan for correctness checking.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Short name, e.g. `"magma_vbatch"`.
    pub name: &'static str,
    /// Launch structure consumed by the timing simulator.
    pub seq: LaunchSequence,
    /// One-tile-per-block functional plan covering the same tiles (tile
    /// geometry identical; only the thread mapping differs, which cannot
    /// change the numerics).
    pub functional: BatchPlan,
}

/// Map a Table 1 strategy to the Table 2 strategy with the same tile
/// geometry (`BY`, `BX`, `BK` are equal kind-for-kind across tables), so
/// baseline tiles can ride the framework's functional interpreter.
pub fn functional_equivalent(st: &TilingStrategy) -> TilingStrategy {
    let eq = batched(st.kind, ThreadCount::T256);
    debug_assert_eq!((eq.by, eq.bx, eq.bk), (st.by, st.bx, st.bk));
    eq
}

/// Build the one-tile-per-block functional plan for baseline tiles.
pub fn functional_plan(tiles: &[TileTask]) -> BatchPlan {
    let blocks: Vec<Vec<TileTask>> = tiles
        .iter()
        .map(|t| vec![TileTask { strategy: functional_equivalent(&t.strategy), ..*t }])
        .collect();
    BatchPlan::from_blocks(&blocks, 256)
}

/// Enumerate the tile grid of one GEMM under a (Table 1) strategy.
pub fn gemm_tiles(gemm: usize, shape: &GemmShape, st: TilingStrategy) -> Vec<TileTask> {
    let gy = shape.m.div_ceil(st.by);
    let gx = shape.n.div_ceil(st.bx);
    let mut tiles = Vec::with_capacity(gy * gx);
    for y in 0..gy {
        for x in 0..gx {
            tiles.push(TileTask { gemm, y, x, k: shape.k, strategy: st });
        }
    }
    tiles
}

/// Functionally execute a baseline and simulate its timing.
pub fn execute_baseline(
    arch: &ArchSpec,
    batch: &GemmBatch,
    run: &BaselineRun,
) -> (Vec<MatF32>, SimReport) {
    let results = execute_plan(batch, &run.functional);
    let report = simulate(arch, &run.seq);
    (results, report)
}

/// Timing only.
pub fn simulate_baseline(arch: &ArchSpec, run: &BaselineRun) -> SimReport {
    simulate(arch, &run.seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_tiling::strategy::SINGLE_GEMM_STRATEGIES;

    #[test]
    fn every_table1_strategy_has_a_geometry_equivalent() {
        for st in SINGLE_GEMM_STRATEGIES {
            let eq = functional_equivalent(&st);
            assert_eq!((eq.by, eq.bx, eq.bk), (st.by, st.bx, st.bk));
        }
    }

    #[test]
    fn gemm_tiles_cover_the_grid() {
        let st = SINGLE_GEMM_STRATEGIES[0]; // small 16x16
        let tiles = gemm_tiles(3, &GemmShape::new(20, 40, 8), st);
        assert_eq!(tiles.len(), 2 * 3);
        assert!(tiles.iter().all(|t| t.gemm == 3 && t.k == 8));
    }
}

//! Baseline batched-GEMM executions the paper compares against (§3, §7
//! and the artifact appendix): `default`, `cke`, a cuBLAS-like same-size
//! batcher, and MAGMA `vbatch`.
//!
//! Every baseline produces a [`BaselineRun`]: a [`LaunchSequence`] for
//! the timing simulator plus a functional [`BatchPlan`] so its numerical
//! results can be verified against the reference GEMM exactly like the
//! coordinated framework's.

pub mod cke_exec;
pub mod cublas_like_exec;
pub mod default_exec;
pub mod magma;
pub mod run;

pub use cke_exec::cke;
pub use cublas_like_exec::cublas_like;
pub use default_exec::{default_functional, default_serial};
pub use magma::magma_vbatch;
pub use run::{execute_baseline, simulate_baseline, BaselineRun};

//! The `cke` baseline: the same per-GEMM kernels as `default`, issued
//! round-robin over CUDA streams (§3's concurrent-kernel-execution
//! direction; the artifact's `cke/` variant).

use crate::default_exec::per_gemm_kernels;
use crate::run::{functional_plan, BaselineRun};
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::LaunchSequence;

/// Default stream count used by the paper's artifact-style CKE runs.
pub const DEFAULT_STREAMS: usize = 8;

/// Concurrent kernel execution over `streams` streams.
pub fn cke_with_streams(arch: &ArchSpec, shapes: &[GemmShape], streams: usize) -> BaselineRun {
    let (kernels, tiles) = per_gemm_kernels(arch, shapes);
    BaselineRun {
        name: "cke",
        seq: LaunchSequence::Streams { streams, kernels },
        functional: functional_plan(&tiles),
    }
}

/// Concurrent kernel execution with the default stream count.
pub fn cke(arch: &ArchSpec, shapes: &[GemmShape]) -> BaselineRun {
    cke_with_streams(arch, shapes, DEFAULT_STREAMS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_exec::default_serial;
    use crate::run::{execute_baseline, simulate_baseline};
    use ctb_matrix::{assert_all_close, GemmBatch};

    #[test]
    fn cke_is_no_slower_than_default_on_many_small_gemms() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(64, 64, 64); 12];
        let d = simulate_baseline(&arch, &default_serial(&arch, &shapes));
        let c = simulate_baseline(&arch, &cke(&arch, &shapes));
        assert!(
            c.total_us <= d.total_us * 1.001,
            "cke {} vs default {}",
            c.total_us,
            d.total_us
        );
    }

    #[test]
    fn results_match_reference() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(40, 56, 24), GemmShape::new(72, 24, 80)];
        let batch = GemmBatch::random(&shapes, 0.5, 1.0, 31);
        let (results, _) = execute_baseline(&arch, &batch, &cke(&arch, &shapes));
        assert_all_close(&batch.reference_result(), &results, 2e-4);
    }
}

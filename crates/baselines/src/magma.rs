//! The MAGMA `vbatch` baseline — the paper's state-of-the-art
//! comparator (§3, Fig 3).
//!
//! One kernel batches all GEMMs by expanding `gridDim.z`: GEMM `g` owns
//! the Z-slice `blockIdx.z == g`. The 2-D slice is sized by the
//! *largest* GEMM's tile grid, so smaller GEMMs leave **bubble blocks**
//! (Fig 3a). A single fixed tile size and block size serve every GEMM —
//! MAGMA's kernels use one classic blocking and no batch-aware tiling —
//! so blocks working on tiles that extend past a small GEMM's bounds
//! have **idle threads** (Fig 3b), and there is no multi-tile batching
//! along K.
//!
//! The fixed strategy is the small 16×16 blocking — the uniform tile
//! size the paper's Fig 3 depicts for the vbatch scheme, and the natural
//! fixed choice for kernels that target *small* variable-size matrices
//! (a larger fixed tile would degenerate most small GEMMs to a single
//! under-occupied block).

use crate::run::{functional_plan, BaselineRun};
use ctb_batching::TileTask;
use ctb_core::lowering::block_work;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::{BlockWork, KernelDesc, LaunchSequence};
use ctb_tiling::strategy::SINGLE_GEMM_STRATEGIES;
use ctb_tiling::TilingStrategy;

/// MAGMA's fixed tile strategy: the small 16×16×8 Table 1 blocking for
/// every GEMM in every batch (the uniform tiling of the paper's Fig 3).
pub fn magma_strategy(_shapes: &[GemmShape]) -> TilingStrategy {
    SINGLE_GEMM_STRATEGIES[0]
}

/// Build the single `vbatch` kernel for a batch of shapes.
pub fn magma_vbatch(arch: &ArchSpec, shapes: &[GemmShape]) -> BaselineRun {
    let _ = arch; // strategy is fixed, not tuned per device — MAGMA's design.
    let st = magma_strategy(shapes);
    let grids: Vec<(usize, usize)> = shapes
        .iter()
        .map(|s| (s.m.div_ceil(st.by), s.n.div_ceil(st.bx)))
        .collect();
    let gy_max = grids.iter().map(|g| g.0).max().unwrap_or(0);
    let gx_max = grids.iter().map(|g| g.1).max().unwrap_or(0);

    let mut blocks: Vec<BlockWork> = Vec::with_capacity(shapes.len() * gy_max * gx_max);
    let mut tiles: Vec<TileTask> = Vec::new();
    // Grid order (z, y, x): the rasteriser dispatch order bubbles
    // interleave with.
    for (g, shape) in shapes.iter().enumerate() {
        let (gy, gx) = grids[g];
        for y in 0..gy_max {
            for x in 0..gx_max {
                if y < gy && x < gx {
                    let t = TileTask { gemm: g, y, x, k: shape.k, strategy: st };
                    blocks.push(block_work(std::slice::from_ref(&t), st.threads, shapes));
                    tiles.push(t);
                } else {
                    blocks.push(BlockWork::bubble());
                }
            }
        }
    }

    // MAGMA's vbatch kernel lacks the fine-grained software-pipelining
    // optimisations (§7: "without the fine-grained tiling and batching
    // optimizations"), so it runs at prefetch depth 1.
    let kernel = KernelDesc::new(
        format!("magma_vbatch_{}x{}x{}_B{}", st.by, st.bx, st.bk, shapes.len()),
        st.footprint(),
        blocks,
    )
    .unpipelined();
    BaselineRun {
        name: "magma_vbatch",
        seq: LaunchSequence::Single(kernel),
        functional: functional_plan(&tiles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{execute_baseline, simulate_baseline};
    use ctb_matrix::{assert_all_close, GemmBatch};
    use ctb_tiling::StrategyKind;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    #[test]
    fn strategy_is_the_fixed_small_blocking() {
        for shapes in [
            vec![GemmShape::new(16, 16, 8), GemmShape::new(128, 128, 8)],
            vec![GemmShape::new(2048, 2048, 512)],
            vec![GemmShape::new(4, 4, 4)],
        ] {
            assert_eq!(magma_strategy(&shapes).kind, StrategyKind::Small);
        }
    }

    #[test]
    fn fig3a_bubble_structure() {
        // Fig 3(a): GEMMs 16x32x128, 64x48x64, 64x64x128 with 16x16
        // tiles -> grids 1x2, 4x3, 4x4; the slice is 4x4, so the kernel
        // has 3*16 = 48 blocks of which (16-2) + (16-12) = 18 are
        // bubbles.
        let shapes = vec![
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 48, 64),
            GemmShape::new(64, 64, 128),
        ];
        let run = magma_vbatch(&v100(), &shapes);
        let kd = match &run.seq {
            LaunchSequence::Single(k) => k,
            _ => panic!("vbatch is a single kernel"),
        };
        assert_eq!(kd.blocks.len(), 48);
        assert_eq!(kd.bubble_blocks(), 18);
        assert!(!kd.software_pipelined, "vbatch lacks fine-grained pipelining");
    }

    #[test]
    fn boundary_tiles_idle_threads() {
        // A GEMM whose N is not a tile multiple leaves partially covered
        // boundary tiles: their blocks run with fewer active threads.
        let shapes = vec![GemmShape::new(16, 20, 32)];
        let run = magma_vbatch(&v100(), &shapes);
        let kd = match &run.seq {
            LaunchSequence::Single(k) => k,
            _ => unreachable!(),
        };
        let st = magma_strategy(&shapes);
        let min_active = kd
            .blocks
            .iter()
            .filter(|b| !b.is_bubble())
            .map(|b| b.active_threads)
            .min()
            .unwrap();
        assert!(min_active <= st.threads, "boundary blocks can't exceed block size");
        assert_eq!(kd.blocks.len(), 2, "grid 1x2 under 16x16 tiles");
    }

    #[test]
    fn results_match_reference() {
        let shapes = vec![
            GemmShape::new(16, 32, 128),
            GemmShape::new(64, 48, 64),
            GemmShape::new(100, 100, 30),
        ];
        let batch = GemmBatch::random(&shapes, 1.0, 2.0, 99);
        let run = magma_vbatch(&v100(), &shapes);
        let (results, report) = execute_baseline(&v100(), &batch, &run);
        assert_all_close(&batch.reference_result(), &results, 2e-4);
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    fn single_launch_beats_default_for_many_small_gemms() {
        use crate::default_exec::default_serial;
        let arch = v100();
        let shapes = vec![GemmShape::new(64, 64, 64); 32];
        let m = simulate_baseline(&arch, &magma_vbatch(&arch, &shapes));
        let d = simulate_baseline(&arch, &default_serial(&arch, &shapes));
        assert!(m.total_us < d.total_us, "magma {} vs default {}", m.total_us, d.total_us);
    }
}

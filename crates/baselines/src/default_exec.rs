//! The `default` baseline: one classic single-GEMM kernel per GEMM,
//! launched serially (§3 "in default execution mode, each GEMM
//! corresponds to a kernel and they execute one by one").

use crate::run::{functional_plan, gemm_tiles, BaselineRun};
use ctb_batching::TileTask;
use ctb_core::lowering::block_work;
use ctb_gpu_specs::ArchSpec;
use ctb_matrix::GemmShape;
use ctb_sim::{KernelDesc, LaunchSequence};
use ctb_tiling::select_single_gemm;

/// Build the per-GEMM kernels with their individually optimal Table 1
/// strategies.
pub(crate) fn per_gemm_kernels(
    arch: &ArchSpec,
    shapes: &[GemmShape],
) -> (Vec<KernelDesc>, Vec<TileTask>) {
    let mut kernels = Vec::with_capacity(shapes.len());
    let mut all_tiles = Vec::new();
    for (g, shape) in shapes.iter().enumerate() {
        let st = select_single_gemm(shape, arch);
        let tiles = gemm_tiles(g, shape, st);
        let blocks = tiles
            .iter()
            .map(|t| block_work(std::slice::from_ref(t), st.threads, shapes))
            .collect();
        kernels.push(KernelDesc::new(
            format!("default_gemm_{g}_{shape}"),
            st.footprint(),
            blocks,
        ));
        all_tiles.extend(tiles);
    }
    (kernels, all_tiles)
}

/// The default serial execution of a batch.
pub fn default_serial(arch: &ArchSpec, shapes: &[GemmShape]) -> BaselineRun {
    let (kernels, tiles) = per_gemm_kernels(arch, shapes);
    BaselineRun {
        name: "default",
        seq: LaunchSequence::Serial(kernels),
        functional: functional_plan(&tiles),
    }
}

/// Functional-only default execution: the per-GEMM Table 1 kernels'
/// numerics without building launch descriptors or simulating timing.
/// This is the serving layer's degraded-mode executor — it must stay
/// bitwise-identical to the coordinated path, which it is because both
/// replay the same ascending-k accumulation per GEMM.
pub fn default_functional(arch: &ArchSpec, batch: &ctb_matrix::GemmBatch) -> Vec<ctb_matrix::MatF32> {
    let mut tiles = Vec::new();
    for (g, shape) in batch.shapes.iter().enumerate() {
        let st = select_single_gemm(shape, arch);
        tiles.extend(gemm_tiles(g, shape, st));
    }
    ctb_core::interface::execute_plan(batch, &functional_plan(&tiles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::execute_baseline;
    use ctb_matrix::{assert_all_close, GemmBatch};

    #[test]
    fn one_kernel_per_gemm() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(64, 64, 32), GemmShape::new(128, 96, 64)];
        let run = default_serial(&arch, &shapes);
        assert_eq!(run.seq.kernels().len(), 2);
    }

    #[test]
    fn functional_only_matches_the_full_baseline_bitwise() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(48, 80, 96), GemmShape::new(17, 33, 41)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, 78);
        let run = default_serial(&arch, &shapes);
        let (full, _report) = execute_baseline(&arch, &batch, &run);
        let lean = default_functional(&arch, &batch);
        assert_eq!(full.len(), lean.len());
        for (f, l) in full.iter().zip(&lean) {
            assert_eq!(f.as_slice(), l.as_slice(), "bitwise-identical numerics");
        }
    }

    #[test]
    fn results_match_reference() {
        let arch = ArchSpec::volta_v100();
        let shapes = vec![GemmShape::new(48, 80, 96), GemmShape::new(17, 33, 41)];
        let batch = GemmBatch::random(&shapes, 1.0, 0.5, 77);
        let run = default_serial(&arch, &shapes);
        let (results, report) = execute_baseline(&arch, &batch, &run);
        assert_all_close(&batch.reference_result(), &results, 2e-4);
        // Serial launches: at least 2 launch overheads.
        assert!(report.total_us >= 2.0 * arch.kernel_launch_overhead_us);
    }
}

//! Dense row-major `f32` matrix.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// A dense row-major matrix of `f32`.
///
/// Element `(r, c)` lives at `data[r * cols + c]`. Row-major layout is
/// used throughout the reproduction; GEMM is layout-symmetric so nothing
/// in the paper's argument depends on the BLAS column-major convention.
///
/// The backing buffer is `Arc`-shared: `clone()` is a refcount bump, so
/// requests can travel through admission, coalescing, batching and the
/// cluster engines without copying a single element. Mutation goes
/// through [`MatF32::as_mut_slice`] / [`MatF32::set`], which
/// clone-on-write only when the buffer is actually shared (e.g. a
/// degraded re-route writing into a C operand another ticket still
/// holds).
#[derive(Debug, Clone, PartialEq)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Arc<Vec<f32>>,
}

impl MatF32 {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatF32 { rows, cols, data: Arc::new(vec![0.0; rows * cols]) }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        MatF32 { rows, cols, data: Arc::new(data) }
    }

    /// Deterministically random matrix with entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        MatF32 { rows, cols, data: Arc::new(data) }
    }

    /// Matrix filled with `v`.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        MatF32 { rows, cols, data: Arc::new(vec![v; rows * cols]) }
    }

    /// Identity-like matrix (1.0 on the diagonal), not necessarily square.
    pub fn eye(rows: usize, cols: usize) -> Self {
        let mut m = MatF32::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        let cols = self.cols;
        Arc::make_mut(&mut self.data)[r * cols + c] = v;
    }

    /// Borrow the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing buffer, cloning it first if it is
    /// shared with another matrix (copy-on-write).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consume into the backing buffer. Copies only when the buffer is
    /// still shared with another matrix.
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// `true` when `self` and `other` share the same backing buffer —
    /// i.e. no copy has happened between them. Used by the zero-copy
    /// tests to prove the hot path never duplicates operands.
    pub fn shares_buffer(&self, other: &MatF32) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Transposed copy.
    pub fn transposed(&self) -> MatF32 {
        let mut t = MatF32::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let m = MatF32::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = MatF32::random(16, 16, 7);
        let b = MatF32::random(16, 16, 7);
        let c = MatF32::random(16, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn transpose_round_trips() {
        let m = MatF32::random(5, 9, 3);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn eye_diagonal() {
        let e = MatF32::eye(3, 5);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(e.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = MatF32::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn clone_is_zero_copy_until_written() {
        let a = MatF32::random(8, 8, 11);
        let mut b = a.clone();
        assert!(a.shares_buffer(&b), "clone must share the buffer");

        // Reading keeps sharing.
        let _ = b.get(3, 3);
        let _ = b.as_slice();
        assert!(a.shares_buffer(&b));

        // Writing detaches exactly the written clone; the original is
        // untouched.
        b.set(0, 0, 42.0);
        assert!(!a.shares_buffer(&b), "write must copy-on-write");
        assert_ne!(a.get(0, 0), 42.0);
        assert_eq!(b.get(0, 0), 42.0);

        // An unshared matrix mutates in place without further copies.
        let before = b.as_slice().as_ptr();
        b.set(1, 1, 7.0);
        assert_eq!(b.as_slice().as_ptr(), before);
    }

    #[test]
    fn into_vec_avoids_copy_when_unshared() {
        let a = MatF32::random(4, 4, 3);
        let ptr = a.as_slice().as_ptr();
        let v = a.into_vec();
        assert_eq!(v.as_ptr(), ptr, "sole owner must take the buffer");

        let a = MatF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        let v = a.into_vec();
        assert_eq!(v, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}

//! Dense row-major `f32` matrix.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense row-major matrix of `f32`.
///
/// Element `(r, c)` lives at `data[r * cols + c]`. Row-major layout is
/// used throughout the reproduction; GEMM is layout-symmetric so nothing
/// in the paper's argument depends on the BLAS column-major convention.
#[derive(Debug, Clone, PartialEq)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatF32 {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatF32 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        MatF32 { rows, cols, data }
    }

    /// Deterministically random matrix with entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        MatF32 { rows, cols, data }
    }

    /// Matrix filled with `v`.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        MatF32 { rows, cols, data: vec![v; rows * cols] }
    }

    /// Identity-like matrix (1.0 on the diagonal), not necessarily square.
    pub fn eye(rows: usize, cols: usize) -> Self {
        let mut m = MatF32::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transposed(&self) -> MatF32 {
        let mut t = MatF32::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let m = MatF32::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = MatF32::random(16, 16, 7);
        let b = MatF32::random(16, 16, 7);
        let c = MatF32::random(16, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn transpose_round_trips() {
        let m = MatF32::random(5, 9, 3);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn eye_diagonal() {
        let e = MatF32::eye(3, 5);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(e.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_size() {
        let _ = MatF32::from_vec(2, 2, vec![0.0; 3]);
    }
}

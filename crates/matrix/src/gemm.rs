//! Reference GEMM implementations.
//!
//! `C = alpha * A * B + beta * C` in three flavours: a naive triple loop
//! (the oracle for correctness tests), a cache-blocked single-thread
//! version, and a rayon-parallel blocked version used by the functional
//! executor's comparison path when matrices get large.

use crate::mat::MatF32;
use rayon::prelude::*;

/// Naive triple-loop GEMM. The correctness oracle for every other
/// implementation in this repository.
pub fn gemm_ref(alpha: f32, a: &MatF32, b: &MatF32, beta: f32, c: &mut MatF32) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!(c.rows(), m, "C rows");
    assert_eq!(c.cols(), n, "C cols");
    // Detach C once up front; per-element `set` would re-check the
    // copy-on-write refcount on every store.
    let cs = c.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            cs[i * n + j] = alpha * acc + beta * cs[i * n + j];
        }
    }
}

/// Cache-blocked GEMM with a fixed 64×64×64 blocking. Single-threaded.
pub fn gemm_blocked(alpha: f32, a: &MatF32, b: &MatF32, beta: f32, c: &mut MatF32) {
    const BS: usize = 64;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape");

    // Scale C by beta once up front, then accumulate alpha * A*B.
    for v in c.as_mut_slice() {
        *v *= beta;
    }
    let (as_, bs, cs) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for i0 in (0..m).step_by(BS) {
        let i1 = (i0 + BS).min(m);
        for p0 in (0..k).step_by(BS) {
            let p1 = (p0 + BS).min(k);
            for j0 in (0..n).step_by(BS) {
                let j1 = (j0 + BS).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let av = alpha * as_[i * k + p];
                        let brow = &bs[p * n + j0..p * n + j1];
                        let crow = &mut cs[i * n + j0..i * n + j1];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Rayon-parallel blocked GEMM: rows of `C` are partitioned across the
/// thread pool; each band is computed with the blocked kernel.
pub fn gemm_par(alpha: f32, a: &MatF32, b: &MatF32, beta: f32, c: &mut MatF32) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape");
    if m == 0 || n == 0 {
        return;
    }

    let as_ = a.as_slice();
    let bs = b.as_slice();
    // Band size: a few rows per task keeps tasks balanced without
    // oversplitting tiny matrices.
    let band = (m / (4 * rayon::current_num_threads().max(1))).max(8);
    c.as_mut_slice()
        .par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(bi, cband)| {
            let i0 = bi * band;
            let rows = cband.len() / n;
            for v in cband.iter_mut() {
                *v *= beta;
            }
            for (ri, crow) in cband.chunks_mut(n).enumerate() {
                let i = i0 + ri;
                debug_assert!(ri < rows);
                for p in 0..k {
                    // No zero-skip shortcut here: `0.0 * b` is NOT a
                    // no-op when `b` is NaN or infinite, and skipping
                    // would silently diverge from `gemm_ref`.
                    let av = alpha * as_[i * k + p];
                    let brow = &bs[p * n..p * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        });
}

/// Size-dispatched reference GEMM: one entry point that picks the
/// cheapest implementation for the problem size.
///
/// * tiny problems (a few thousand FLOPs) — the naive triple loop;
///   blocking and thread fan-out only add overhead,
/// * mid-size problems — the single-thread register-blocked
///   [`crate::micro::gemm_micro`] kernel,
/// * large problems (≥ ~2 MFLOP with enough rows to band) — the
///   rayon-parallel kernel.
///
/// All three agree with `gemm_ref` to within the usual f32 reassociation
/// tolerance, so callers can treat this as the reference path.
pub fn gemm_auto(alpha: f32, a: &MatF32, b: &MatF32, beta: f32, c: &mut MatF32) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    if flops <= 16 * 1024 {
        gemm_ref(alpha, a, b, beta, c);
    } else if flops < (1 << 21) || m < 32 {
        crate::micro::gemm_micro(alpha, a, b, beta, c);
    } else {
        gemm_par(alpha, a, b, beta, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::max_abs_diff;

    fn check_against_ref(m: usize, n: usize, k: usize, alpha: f32, beta: f32, seed: u64) {
        let a = MatF32::random(m, k, seed);
        let b = MatF32::random(k, n, seed + 1);
        let c0 = MatF32::random(m, n, seed + 2);

        let mut c_ref = c0.clone();
        gemm_ref(alpha, &a, &b, beta, &mut c_ref);

        let mut c_blk = c0.clone();
        gemm_blocked(alpha, &a, &b, beta, &mut c_blk);
        assert!(max_abs_diff(&c_ref, &c_blk) < 1e-3, "blocked deviates");

        let mut c_par = c0.clone();
        gemm_par(alpha, &a, &b, beta, &mut c_par);
        assert!(max_abs_diff(&c_ref, &c_par) < 1e-3, "parallel deviates");
    }

    #[test]
    fn small_square() {
        check_against_ref(8, 8, 8, 1.0, 0.0, 1);
    }

    #[test]
    fn rectangular_with_alpha_beta() {
        check_against_ref(33, 17, 65, 0.5, -1.25, 2);
    }

    #[test]
    fn larger_than_blocking() {
        check_against_ref(130, 70, 200, 1.0, 1.0, 3);
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let b = MatF32::random(6, 9, 5);
        let a = MatF32::eye(6, 6);
        let mut c = MatF32::zeros(6, 9);
        gemm_ref(1.0, &a, &b, 0.0, &mut c);
        assert!(max_abs_diff(&b, &c) < 1e-7);
    }

    #[test]
    fn beta_only_scales_c_when_alpha_zero() {
        let a = MatF32::random(4, 4, 1);
        let b = MatF32::random(4, 4, 2);
        let mut c = MatF32::filled(4, 4, 2.0);
        gemm_ref(0.0, &a, &b, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn degenerate_dimensions() {
        // K = 0: C should just be scaled by beta.
        let a = MatF32::zeros(3, 0);
        let b = MatF32::zeros(0, 2);
        let mut c = MatF32::filled(3, 2, 4.0);
        gemm_ref(1.0, &a, &b, 0.25, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));

        // M = 0 / N = 0 must not panic.
        let a = MatF32::zeros(0, 5);
        let b = MatF32::random(5, 2, 3);
        let mut c = MatF32::zeros(0, 2);
        gemm_par(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn gemm_auto_matches_ref_across_dispatch_sizes() {
        // One case per dispatch branch: naive, blocked, parallel.
        for (m, n, k, seed) in [(8usize, 8usize, 8usize, 7u64), (48, 40, 64, 8), (160, 96, 128, 9)] {
            let a = MatF32::random(m, k, seed);
            let b = MatF32::random(k, n, seed + 1);
            let c0 = MatF32::random(m, n, seed + 2);
            let mut c_ref = c0.clone();
            gemm_ref(1.0, &a, &b, 0.5, &mut c_ref);
            let mut c_auto = c0.clone();
            gemm_auto(1.0, &a, &b, 0.5, &mut c_auto);
            assert!(max_abs_diff(&c_ref, &c_auto) < 1e-3, "auto deviates at {m}x{n}x{k}");
        }
    }

    #[test]
    fn zero_a_rows_propagate_nan_and_inf_from_b() {
        // Regression: gemm_par used to skip `av == 0.0` multiplies, so a
        // zero A row silently dropped NaN/Inf contributions from B and
        // diverged from gemm_ref (0 * NaN = NaN, 0 * inf = NaN).
        let m = 12;
        let n = 6;
        let k = 4;
        let a = MatF32::zeros(m, k);
        let mut b = MatF32::random(k, n, 3);
        b.set(1, 2, f32::NAN);
        b.set(2, 4, f32::INFINITY);
        let c0 = MatF32::filled(m, n, 1.0);

        let mut c_ref = c0.clone();
        gemm_ref(1.0, &a, &b, 1.0, &mut c_ref);
        let mut c_par = c0.clone();
        gemm_par(1.0, &a, &b, 1.0, &mut c_par);

        assert!(c_ref.as_slice().iter().any(|v| v.is_nan()), "oracle must see the NaN");
        for (i, (r, p)) in c_ref.as_slice().iter().zip(c_par.as_slice()).enumerate() {
            let same = (r.is_nan() && p.is_nan()) || r == p;
            assert!(same, "element {i}: ref {r} vs par {p}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = MatF32::zeros(2, 3);
        let b = MatF32::zeros(4, 2);
        let mut c = MatF32::zeros(2, 2);
        gemm_ref(1.0, &a, &b, 0.0, &mut c);
    }
}

//! Matrices, reference GEMM implementations, and synthetic batched-GEMM
//! workload generators.
//!
//! Everything in the reproduction is checked against [`gemm::gemm_ref`]:
//! the framework, all four baselines and the convolution lowering produce
//! numerically comparable `C` matrices for the same inputs.
//!
//! Matrices are dense row-major `f32` ([`MatF32`]); GEMM semantics follow
//! the paper: `C = alpha * A * B + beta * C` with `A: M×K`, `B: K×N`,
//! `C: M×N`.

pub mod batch;
pub mod compare;
pub mod gemm;
pub mod gen;
pub mod mat;
pub mod micro;

pub use batch::{GemmBatch, GemmShape};
pub use compare::{assert_all_close, assert_bitwise_eq, bitwise_mismatch, max_abs_diff, MatchReport};
pub use gemm::{gemm_auto, gemm_blocked, gemm_par, gemm_ref};
pub use micro::gemm_micro;
pub use mat::MatF32;

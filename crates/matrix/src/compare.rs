//! Approximate numerical comparison between matrices.

use crate::mat::MatF32;

/// Maximum absolute element-wise difference between two same-shaped
/// matrices.
pub fn max_abs_diff(a: &MatF32, b: &MatF32) -> f32 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Summary of a comparison across a batch of matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchReport {
    /// Largest absolute difference over every element of every pair.
    pub max_abs: f32,
    /// Largest relative difference (`|x-y| / max(1, |x|)`).
    pub max_rel: f32,
    /// Total elements compared.
    pub elements: usize,
}

impl MatchReport {
    /// Compare two equally sized batches of matrices.
    pub fn compare(expected: &[MatF32], actual: &[MatF32]) -> MatchReport {
        assert_eq!(expected.len(), actual.len(), "batch length mismatch");
        let mut r = MatchReport { max_abs: 0.0, max_rel: 0.0, elements: 0 };
        for (e, a) in expected.iter().zip(actual) {
            assert_eq!((e.rows(), e.cols()), (a.rows(), a.cols()), "shape mismatch");
            for (&x, &y) in e.as_slice().iter().zip(a.as_slice()) {
                let d = (x - y).abs();
                r.max_abs = r.max_abs.max(d);
                r.max_rel = r.max_rel.max(d / x.abs().max(1.0));
                r.elements += 1;
            }
        }
        r
    }

    /// True when all differences are within `tol` relative tolerance.
    pub fn within(&self, tol: f32) -> bool {
        self.max_rel <= tol
    }
}

/// First bitwise mismatch between two equally sized batches, if any:
/// `(matrix index, element index, expected bits, actual bits)`.
///
/// Elements are compared by their `f32` bit patterns, so NaNs compare
/// equal exactly when they carry identical payloads — the right notion
/// of "same result" for executors that are required to replay the
/// identical floating-point operation sequence.
pub fn bitwise_mismatch(
    expected: &[MatF32],
    actual: &[MatF32],
) -> Option<(usize, usize, u32, u32)> {
    assert_eq!(expected.len(), actual.len(), "batch length mismatch");
    for (g, (e, a)) in expected.iter().zip(actual).enumerate() {
        assert_eq!((e.rows(), e.cols()), (a.rows(), a.cols()), "shape mismatch");
        for (i, (&x, &y)) in e.as_slice().iter().zip(a.as_slice()).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some((g, i, x.to_bits(), y.to_bits()));
            }
        }
    }
    None
}

/// Panic unless every element of `actual` is bit-for-bit identical to
/// `expected` (NaN payloads included). `what` names the path under test
/// in the failure message.
pub fn assert_bitwise_eq(expected: &[MatF32], actual: &[MatF32], what: &str) {
    if let Some((g, i, e, a)) = bitwise_mismatch(expected, actual) {
        panic!(
            "{what}: bitwise mismatch at gemm {g} element {i}: \
             expected {:?} (bits {e:#010x}), got {:?} (bits {a:#010x})",
            f32::from_bits(e),
            f32::from_bits(a),
        );
    }
}

/// Panic with a helpful message unless `actual` matches `expected` within
/// `tol` (relative, with absolute floor 1.0 — suitable for accumulations
/// of order-1 random values).
pub fn assert_all_close(expected: &[MatF32], actual: &[MatF32], tol: f32) {
    let r = MatchReport::compare(expected, actual);
    assert!(
        r.within(tol),
        "matrices differ: max_abs={} max_rel={} over {} elements (tol {tol})",
        r.max_abs,
        r.max_rel,
        r.elements
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_have_zero_diff() {
        let a = MatF32::random(8, 8, 1);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        let r = MatchReport::compare(std::slice::from_ref(&a), std::slice::from_ref(&a));
        assert_eq!(r.max_abs, 0.0);
        assert!(r.within(0.0));
    }

    #[test]
    fn detects_perturbation() {
        let a = MatF32::zeros(4, 4);
        let mut b = a.clone();
        b.set(2, 3, 0.5);
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(!MatchReport::compare(&[a], &[b]).within(0.1));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = max_abs_diff(&MatF32::zeros(2, 2), &MatF32::zeros(2, 3));
    }

    #[test]
    fn bitwise_comparison_honours_nan_payloads() {
        let mut a = MatF32::zeros(2, 2);
        a.set(0, 1, f32::NAN);
        let b = a.clone();
        assert_eq!(bitwise_mismatch(&[a.clone()], std::slice::from_ref(&b)), None);
        assert_bitwise_eq(&[a.clone()], &[b], "identical NaNs");

        // A differently signed zero is a bitwise mismatch even though
        // `==` would accept it.
        let mut c = a.clone();
        c.set(1, 0, -0.0);
        let (g, i, _, _) = bitwise_mismatch(&[a], &[c]).expect("signed zero detected");
        assert_eq!((g, i), (0, 2));
    }

    #[test]
    #[should_panic(expected = "bitwise mismatch")]
    fn assert_bitwise_eq_panics_on_difference() {
        let a = MatF32::zeros(1, 1);
        let mut b = a.clone();
        b.set(0, 0, 1.0e-20);
        assert_bitwise_eq(&[a], &[b], "perturbed");
    }

    #[test]
    fn relative_tolerance_uses_magnitude_floor() {
        let e = MatF32::filled(1, 1, 1000.0);
        let mut a = e.clone();
        a.set(0, 0, 1000.5);
        let r = MatchReport::compare(&[e], &[a]);
        // 0.5 / 1000 = 5e-4 relative.
        assert!(r.within(1e-3));
        assert!(!r.within(1e-4));
    }
}

//! Register-blocked GEMM micro-kernel.
//!
//! A CPU analogue of the paper's Fig 2 thread sub-tile: the output is
//! computed in `MR × NR` register tiles, accumulating over K with the
//! B-row kept hot. This is the fastest of the host-side reference
//! kernels and the default inside [`crate::gemm::gemm_auto`]; it exists
//! both as a production-quality CPU path and as a living illustration of
//! the register-blocking idea the paper's GPU tiles are built on.

use crate::mat::MatF32;

/// Register tile rows.
const MR: usize = 4;
/// Register tile columns.
const NR: usize = 8;

/// Compute one full `MR × NR` register tile at `(i0, j0)`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile(a: &[f32], b: &[f32], c: &mut [f32], n: usize, k: usize, i0: usize, j0: usize, alpha: f32) {
    // acc[r][s] accumulates C[i0+r][j0+s].
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let brow = &b[p * n + j0..p * n + j0 + NR];
        // The compiler keeps `acc` and `av` in registers; the inner
        // loops fully unroll (MR, NR are constants).
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = alpha * a[(i0 + r) * k + p];
            for (s, acc_rs) in acc_r.iter_mut().enumerate() {
                *acc_rs += av * brow[s];
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        for (dst, &v) in crow.iter_mut().zip(acc_r) {
            *dst += v;
        }
    }
}

/// Scalar edge handling for partial tiles.
#[inline]
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    n: usize,
    k: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    alpha: f32,
) {
    for i in rows {
        for p in 0..k {
            // No zero-skip shortcut: `0.0 * b` is NOT a no-op when `b`
            // is NaN or infinite (same contract as `gemm_par`).
            let av = alpha * a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in cols.clone() {
                crow[j] += av * brow[j];
            }
        }
    }
}

/// Register-blocked GEMM: `C = alpha · A·B + beta · C`.
pub fn gemm_micro(alpha: f32, a: &MatF32, b: &MatF32, beta: f32, c: &mut MatF32) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimensions must agree");
    assert_eq!((c.rows(), c.cols()), (m, n), "C shape");

    for v in c.as_mut_slice() {
        *v *= beta;
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let (as_, bs) = (a.as_slice(), b.as_slice());
    let cs = c.as_mut_slice();

    let m_main = m - m % MR;
    let n_main = n - n % NR;
    for i0 in (0..m_main).step_by(MR) {
        for j0 in (0..n_main).step_by(NR) {
            micro_tile(as_, bs, cs, n, k, i0, j0, alpha);
        }
    }
    // Right edge (full-height rows, partial columns).
    if n_main < n {
        edge_tile(as_, bs, cs, n, k, 0..m_main, n_main..n, alpha);
    }
    // Bottom edge (partial rows, all columns).
    if m_main < m {
        edge_tile(as_, bs, cs, n, k, m_main..m, 0..n, alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::max_abs_diff;
    use crate::gemm::gemm_ref;

    fn check(m: usize, n: usize, k: usize, alpha: f32, beta: f32, seed: u64) {
        let a = MatF32::random(m, k, seed);
        let b = MatF32::random(k, n, seed + 1);
        let c0 = MatF32::random(m, n, seed + 2);
        let mut expect = c0.clone();
        gemm_ref(alpha, &a, &b, beta, &mut expect);
        let mut got = c0.clone();
        gemm_micro(alpha, &a, &b, beta, &mut got);
        assert!(
            max_abs_diff(&expect, &got) < 1e-3,
            "micro kernel deviates at {m}x{n}x{k}"
        );
        let mut auto = c0;
        crate::gemm::gemm_auto(alpha, &a, &b, beta, &mut auto);
        assert!(max_abs_diff(&expect, &auto) < 1e-3);
    }

    #[test]
    fn exact_register_multiples() {
        check(8, 16, 32, 1.0, 0.0, 1);
    }

    #[test]
    fn ragged_edges_in_both_dimensions() {
        check(7, 13, 21, 1.0, 1.0, 2);
        check(5, 9, 3, 0.5, -0.25, 3);
        check(4, 7, 16, 1.0, 0.0, 4); // partial columns only
        check(9, 8, 16, 1.0, 0.0, 5); // partial rows only
    }

    #[test]
    fn slivers_fall_back_safely() {
        check(1, 1, 1, 1.0, 2.0, 6);
        check(3, 2, 64, 1.0, 0.0, 7);
        check(130, 1, 5, -1.0, 0.5, 8);
    }

    #[test]
    fn degenerate_k_scales_by_beta() {
        let a = MatF32::zeros(8, 0);
        let b = MatF32::zeros(0, 16);
        let mut c = MatF32::filled(8, 16, 2.0);
        gemm_micro(1.0, &a, &b, 0.5, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn alpha_zero_is_pure_scaling() {
        let a = MatF32::random(8, 8, 9);
        let b = MatF32::random(8, 8, 10);
        let mut c = MatF32::filled(8, 8, 4.0);
        gemm_micro(0.0, &a, &b, 0.25, &mut c);
        assert!(c.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }
}

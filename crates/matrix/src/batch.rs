//! Batched-GEMM problem descriptions: shapes plus host buffers.

use crate::gemm::{gemm_auto, gemm_ref};
use crate::mat::MatF32;
use rayon::prelude::*;

/// The size of one GEMM: `C (M×N) = alpha * A (M×K) * B (K×N) + beta * C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl GemmShape {
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Floating-point operations of this GEMM (2·M·N·K, the usual count).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Bytes of A, B and C (f32).
    pub fn bytes(&self) -> u64 {
        4 * (self.m * self.k + self.k * self.n + self.m * self.n) as u64
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// A batch of independent GEMMs sharing one `alpha`/`beta` pair, with the
/// host-side `A`, `B` and (initial) `C` buffers.
///
/// The shapes may all differ — this is the variable-size batched-GEMM
/// problem the paper targets (MAGMA `vbatch` territory); same-size
/// batches are the special case `cublasSgemmBatched` supports.
#[derive(Debug, Clone)]
pub struct GemmBatch {
    pub shapes: Vec<GemmShape>,
    pub a: Vec<MatF32>,
    pub b: Vec<MatF32>,
    pub c: Vec<MatF32>,
    pub alpha: f32,
    pub beta: f32,
}

impl GemmBatch {
    /// A batch with deterministic random `A`/`B`/`C` contents.
    pub fn random(shapes: &[GemmShape], alpha: f32, beta: f32, seed: u64) -> Self {
        let mut a = Vec::with_capacity(shapes.len());
        let mut b = Vec::with_capacity(shapes.len());
        let mut c = Vec::with_capacity(shapes.len());
        for (i, s) in shapes.iter().enumerate() {
            let s0 = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64 * 3);
            a.push(MatF32::random(s.m, s.k, s0));
            b.push(MatF32::random(s.k, s.n, s0 + 1));
            c.push(MatF32::random(s.m, s.n, s0 + 2));
        }
        GemmBatch { shapes: shapes.to_vec(), a, b, c, alpha, beta }
    }

    /// Assemble a batch from per-GEMM buffers, inferring the shape list
    /// from the matrices and validating consistency up front. This is
    /// the request→batch path the serving layer uses to coalesce many
    /// independently submitted GEMMs into one plannable problem.
    pub fn from_parts(
        a: Vec<MatF32>,
        b: Vec<MatF32>,
        c: Vec<MatF32>,
        alpha: f32,
        beta: f32,
    ) -> Result<Self, String> {
        if a.len() != b.len() || a.len() != c.len() {
            return Err("buffer count mismatch".into());
        }
        let shapes: Vec<GemmShape> = a
            .iter()
            .zip(&c)
            .map(|(ai, ci)| GemmShape::new(ci.rows(), ci.cols(), ai.cols()))
            .collect();
        let batch = GemmBatch { shapes, a, b, c, alpha, beta };
        batch.validate()?;
        Ok(batch)
    }

    /// A batch whose `C` matrices start at zero (beta irrelevant then).
    pub fn random_zero_c(shapes: &[GemmShape], alpha: f32, seed: u64) -> Self {
        let mut batch = GemmBatch::random(shapes, alpha, 0.0, seed);
        for c in &mut batch.c {
            *c = MatF32::zeros(c.rows(), c.cols());
        }
        batch
    }

    /// Number of GEMMs in the batch (the paper's `B`).
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Total FLOPs of the batch.
    pub fn total_flops(&self) -> u64 {
        self.shapes.iter().map(GemmShape::flops).sum()
    }

    /// `(avg M, avg N, avg K, B)` — the random-forest feature vector of §5.
    pub fn avg_features(&self) -> (f64, f64, f64, usize) {
        let b = self.len().max(1) as f64;
        let m = self.shapes.iter().map(|s| s.m as f64).sum::<f64>() / b;
        let n = self.shapes.iter().map(|s| s.n as f64).sum::<f64>() / b;
        let k = self.shapes.iter().map(|s| s.k as f64).sum::<f64>() / b;
        (m, n, k, self.len())
    }

    /// True iff every GEMM has the same (M, N, K).
    pub fn is_uniform(&self) -> bool {
        self.shapes.windows(2).all(|w| w[0] == w[1])
    }

    /// Compute the expected `C` matrices with the reference kernel.
    ///
    /// Independent GEMMs are evaluated in parallel on the rayon pool;
    /// each one goes through [`gemm_auto`], which picks the cheapest
    /// kernel for its size.
    pub fn reference_result(&self) -> Vec<MatF32> {
        (0..self.len())
            .into_par_iter()
            .map(|i| {
                let mut c = self.c[i].clone();
                gemm_auto(self.alpha, &self.a[i], &self.b[i], self.beta, &mut c);
                c
            })
            .collect()
    }

    /// Compute the expected `C` matrices with the naive triple-loop
    /// oracle ([`gemm_ref`]), one GEMM per rayon task.
    ///
    /// Unlike [`GemmBatch::reference_result`], which dispatches to the
    /// fastest host kernel per size (those reassociate the accumulation
    /// and are only tolerance-close to the oracle), every element here
    /// is accumulated in ascending-k order with the `alpha*acc + beta*c`
    /// epilogue — the exact operation sequence the plan executors apply.
    /// The framework path, both plan interpreters and every baseline's
    /// functional plan are therefore **bitwise identical** to this
    /// result, including NaN/Inf propagation; the differential and
    /// serving-layer stress suites rely on that.
    pub fn reference_result_exact(&self) -> Vec<MatF32> {
        (0..self.len())
            .into_par_iter()
            .map(|i| {
                let mut c = self.c[i].clone();
                gemm_ref(self.alpha, &self.a[i], &self.b[i], self.beta, &mut c);
                c
            })
            .collect()
    }

    /// Validate internal consistency (buffer shapes match `shapes`).
    pub fn validate(&self) -> Result<(), String> {
        if self.a.len() != self.len() || self.b.len() != self.len() || self.c.len() != self.len() {
            return Err("buffer count mismatch".into());
        }
        for (i, s) in self.shapes.iter().enumerate() {
            if (self.a[i].rows(), self.a[i].cols()) != (s.m, s.k) {
                return Err(format!("A[{i}] shape mismatch"));
            }
            if (self.b[i].rows(), self.b[i].cols()) != (s.k, s.n) {
                return Err(format!("B[{i}] shape mismatch"));
            }
            if (self.c[i].rows(), self.c[i].cols()) != (s.m, s.n) {
                return Err(format!("C[{i}] shape mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_flops_and_bytes() {
        let s = GemmShape::new(16, 784, 192);
        assert_eq!(s.flops(), 2 * 16 * 784 * 192);
        assert_eq!(s.bytes(), 4 * (16 * 192 + 192 * 784 + 16 * 784) as u64);
        assert_eq!(s.to_string(), "16x784x192");
    }

    #[test]
    fn batch_construction_is_consistent() {
        let shapes =
            vec![GemmShape::new(16, 32, 128), GemmShape::new(64, 64, 64), GemmShape::new(256, 256, 64)];
        let b = GemmBatch::random(&shapes, 1.0, 0.5, 9);
        b.validate().expect("valid");
        assert_eq!(b.len(), 3);
        assert!(!b.is_uniform());
        let (m, n, k, cnt) = b.avg_features();
        assert_eq!(cnt, 3);
        assert!((m - (16.0 + 64.0 + 256.0) / 3.0).abs() < 1e-12);
        assert!((n - (32.0 + 64.0 + 256.0) / 3.0).abs() < 1e-12);
        assert!((k - (128.0 + 64.0 + 64.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_batch_detected() {
        let shapes = vec![GemmShape::new(32, 32, 32); 4];
        assert!(GemmBatch::random(&shapes, 1.0, 0.0, 1).is_uniform());
    }

    #[test]
    fn reference_result_matches_manual_ref() {
        use crate::compare::max_abs_diff;
        use crate::gemm::gemm_ref;
        let shapes = vec![GemmShape::new(17, 9, 23)];
        let b = GemmBatch::random(&shapes, 0.7, 1.3, 11);
        let refs = b.reference_result();
        let mut c = b.c[0].clone();
        gemm_ref(b.alpha, &b.a[0], &b.b[0], b.beta, &mut c);
        assert!(max_abs_diff(&refs[0], &c) < 1e-4);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let shapes = vec![GemmShape::new(5, 7, 3), GemmShape::new(2, 2, 9)];
        let b = GemmBatch::random(&shapes, 0.5, 1.5, 4);
        let rebuilt =
            GemmBatch::from_parts(b.a.clone(), b.b.clone(), b.c.clone(), b.alpha, b.beta)
                .expect("consistent parts assemble");
        assert_eq!(rebuilt.shapes, shapes);

        // Mismatched inner dimension is rejected up front.
        let bad_b = vec![MatF32::zeros(4, 7), MatF32::zeros(9, 2)];
        assert!(GemmBatch::from_parts(b.a.clone(), bad_b, b.c.clone(), 1.0, 0.0).is_err());
        // Mismatched buffer counts are rejected.
        assert!(GemmBatch::from_parts(b.a.clone(), b.b[..1].to_vec(), b.c.clone(), 1.0, 0.0)
            .is_err());
    }

    #[test]
    fn exact_reference_matches_gemm_ref_bitwise() {
        let shapes = vec![GemmShape::new(17, 9, 23), GemmShape::new(40, 33, 64)];
        let b = GemmBatch::random(&shapes, 0.7, 1.3, 11);
        let exact = b.reference_result_exact();
        for (i, expected) in exact.iter().enumerate() {
            let mut c = b.c[i].clone();
            gemm_ref(b.alpha, &b.a[i], &b.b[i], b.beta, &mut c);
            crate::compare::assert_bitwise_eq(
                std::slice::from_ref(&c),
                std::slice::from_ref(expected),
                "exact oracle",
            );
        }
    }

    #[test]
    fn zero_c_batch_has_zero_c() {
        let b = GemmBatch::random_zero_c(&[GemmShape::new(4, 4, 4)], 1.0, 5);
        assert!(b.c[0].as_slice().iter().all(|&v| v == 0.0));
    }
}

//! Synthetic batched-GEMM workload generators for the paper's
//! experiments.
//!
//! * Fig 8 / Fig 9 use a grid of cases: batch size × (M = N) × K, with K
//!   swept logarithmically from 16 to 2048.
//! * Fig 11 uses 100 randomly generated batched-GEMM cases per device.
//! * The random-forest selector is trained on >400 random cases.

use crate::batch::GemmShape;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The paper's K sweep for the Fig 8 / Fig 9 histograms: 16 … 2048 in
/// logarithmic (power-of-two) steps.
pub fn k_sweep() -> Vec<usize> {
    (4..=11).map(|e| 1usize << e).collect()
}

/// Batch sizes used for the histogram columns.
pub fn fig_batch_sizes() -> Vec<usize> {
    vec![4, 8, 16, 32]
}

/// M = N values used for the histogram rows.
pub fn fig_mn_sizes() -> Vec<usize> {
    vec![64, 128, 256]
}

/// A same-size batch: `b` GEMMs of `m × n × k`.
pub fn uniform_case(b: usize, m: usize, n: usize, k: usize) -> Vec<GemmShape> {
    vec![GemmShape::new(m, n, k); b]
}

/// A variable-size batch centred on `m × n × k`: each GEMM's dimensions
/// are independently scaled by a factor in `[1 - jitter, 1 + jitter]`
/// (floored at 1). This is the "matrix sizes may vary hugely" scenario
/// that motivates MAGMA `vbatch` and this paper.
pub fn jittered_case(
    b: usize,
    m: usize,
    n: usize,
    k: usize,
    jitter: f64,
    seed: u64,
) -> Vec<GemmShape> {
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scale = |base: usize| -> usize {
        let f = rng.random_range(1.0 - jitter..=1.0 + jitter);
        ((base as f64 * f).round() as usize).max(1)
    };
    (0..b).map(|_| GemmShape::new(scale(m), scale(n), scale(k))).collect()
}

/// One of Fig 11's random batched-GEMM cases: batch size in `[4, 32]`,
/// M and N log-uniform in `[16, 512]`, K log-uniform in `[16, 1024]` —
/// "small matrices", per the paper's motivation, with sizes that vary
/// hugely within one batch.
pub fn random_case(seed: u64) -> Vec<GemmShape> {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = rng.random_range(4..=32);
    let log_dim = |rng: &mut StdRng, lo: f64, hi: f64| -> usize {
        let e = rng.random_range(lo.log2()..=hi.log2());
        (2f64.powf(e).round() as usize).max(1)
    };
    (0..b)
        .map(|_| {
            GemmShape::new(
                log_dim(&mut rng, 16.0, 512.0),
                log_dim(&mut rng, 16.0, 512.0),
                log_dim(&mut rng, 16.0, 1024.0),
            )
        })
        .collect()
}

/// `count` random cases with distinct derived seeds (Fig 11 uses 100).
pub fn random_cases(count: usize, seed: u64) -> Vec<Vec<GemmShape>> {
    (0..count).map(|i| random_case(seed.wrapping_add(i as u64 * 0x9E37))).collect()
}

/// Training corpus for the random-forest selector: >400 cases spanning
/// the same distribution as [`random_case`] plus the figure grids.
pub fn training_cases(seed: u64) -> Vec<Vec<GemmShape>> {
    let mut cases = random_cases(320, seed);
    for &b in &fig_batch_sizes() {
        for &mn in &fig_mn_sizes() {
            for &k in &k_sweep() {
                cases.push(uniform_case(b, mn, mn, k));
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_is_the_paper_range() {
        let ks = k_sweep();
        assert_eq!(ks.first(), Some(&16));
        assert_eq!(ks.last(), Some(&2048));
        assert_eq!(ks.len(), 8);
        assert!(ks.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn uniform_case_is_uniform() {
        let c = uniform_case(8, 64, 64, 32);
        assert_eq!(c.len(), 8);
        assert!(c.iter().all(|s| *s == GemmShape::new(64, 64, 32)));
    }

    #[test]
    fn jittered_case_stays_near_centre_and_is_deterministic() {
        let a = jittered_case(16, 128, 128, 64, 0.5, 3);
        let b = jittered_case(16, 128, 128, 64, 0.5, 3);
        assert_eq!(a, b);
        for s in &a {
            assert!((64..=192).contains(&s.m), "m = {}", s.m);
            assert!((64..=192).contains(&s.n));
            assert!((32..=96).contains(&s.k));
        }
        // With 50% jitter, at least one GEMM should deviate from centre.
        assert!(a.iter().any(|s| s.m != 128 || s.n != 128 || s.k != 64));
    }

    #[test]
    fn random_case_respects_bounds() {
        for seed in 0..50 {
            let c = random_case(seed);
            assert!((4..=32).contains(&c.len()));
            for s in &c {
                assert!((16..=512).contains(&s.m));
                assert!((16..=512).contains(&s.n));
                assert!((16..=1024).contains(&s.k));
            }
        }
    }

    #[test]
    fn training_corpus_exceeds_400_samples() {
        // Matches the paper's "training set with more than 400 samples".
        assert!(training_cases(1).len() > 400);
    }
}

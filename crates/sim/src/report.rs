//! Simulation reports.

use ctb_gpu_specs::Occupancy;
use serde::{Deserialize, Serialize};

/// Fractions of a kernel's block-cycles attributed to each binding
/// constraint (diagnostics for the TLP/ILP analysis; sums to ~1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BoundBreakdown {
    /// Rounds bound by SM issue / bandwidth throughput.
    pub throughput: f64,
    /// Rounds bound by exposed global-memory latency (TLP-starved).
    pub memory_latency: f64,
    /// Rounds bound by intra-warp dependency stalls (ILP-starved).
    pub dependency: f64,
    /// Fixed overheads: dispatch, pipeline fill, epilogues, tile
    /// switches.
    pub overhead: f64,
}

/// Timing result for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    pub name: String,
    /// Kernel duration in core cycles (excluding launch overhead).
    pub cycles: f64,
    /// Kernel duration in microseconds.
    pub us: f64,
    /// Total blocks in the grid.
    pub blocks: usize,
    /// Bubble blocks among them (MAGMA `vbatch` artefact).
    pub bubble_blocks: usize,
    /// Occupancy of the block footprint on the device.
    pub occupancy: Occupancy,
    /// Kernel-wide average active warps per SM (latency-hiding term).
    pub avg_active_warps: f64,
    /// Grid size divided by device residency slots (how many "waves").
    pub waves: f64,
    /// Where the kernel's block-cycles went (diagnostics).
    pub bound_breakdown: BoundBreakdown,
}

/// End-to-end timing of a launch sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall time in microseconds including launch overheads.
    pub total_us: f64,
    /// Per-kernel breakdowns in launch order.
    pub kernels: Vec<KernelReport>,
}

impl SimReport {
    /// Sum of kernel execution times without launch overhead.
    pub fn exec_us(&self) -> f64 {
        self.kernels.iter().map(|k| k.us).sum()
    }

    /// Achieved GFLOP/s for a workload of `flops` floating-point ops.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        flops as f64 / (self.total_us * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_arithmetic() {
        let r = SimReport { total_us: 1000.0, kernels: vec![] };
        // 2 GFLOP in 1 ms = 2000 GFLOP/s.
        assert!((r.gflops(2_000_000_000) - 2000.0).abs() < 1e-9);
        let zero = SimReport { total_us: 0.0, kernels: vec![] };
        assert_eq!(zero.gflops(1), 0.0);
    }
}

//! The cost IR consumed by the simulator: tile passes, block work,
//! kernel descriptions and launch sequences.

use ctb_gpu_specs::BlockFootprint;
use serde::{Deserialize, Serialize};

/// One tile's main loop (Fig 2), reduced to per-iteration instruction
/// counts *per thread*. Per-warp counts are identical because every
/// thread of a warp executes the same instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePass {
    /// Main-loop iterations: `ceil(K / BK)`.
    pub iterations: u32,
    /// FMA instructions per thread per iteration (Eq 3).
    pub fma_per_thread: f64,
    /// Shared-memory load instructions per thread per iteration
    /// (register-fragment loads, Fig 2 lines 15–16; 128-bit vectorised).
    pub ld_shared_per_thread: f64,
    /// Global-memory load instructions per thread per iteration (Eq 2).
    pub ld_global_per_thread: f64,
    /// Auxiliary integer/address instructions per thread per iteration.
    pub aux_per_thread: f64,
    /// Global store instructions per thread in the epilogue (C
    /// write-back, Fig 2 line 26; 128-bit vectorised).
    pub epilogue_stores: f64,
}

impl TilePass {
    /// True when the main loop touches global memory (it always does for
    /// a real GEMM tile; zero-iteration passes don't).
    pub fn has_global_loads(&self) -> bool {
        self.iterations > 0 && self.ld_global_per_thread > 0.0
    }

    /// Total per-thread instructions over the whole pass (diagnostics).
    pub fn instructions_per_thread(&self) -> f64 {
        self.iterations as f64
            * (self.fma_per_thread
                + self.ld_shared_per_thread
                + self.ld_global_per_thread
                + self.aux_per_thread)
            + self.epilogue_stores
    }
}

/// The work of one thread block: the tiles it executes, one after the
/// other, in the persistent-threads style of the paper's Fig 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockWork {
    /// Threads that actually have a sub-tile to compute. Equal to the
    /// kernel's block size in the paper's unified thread structure;
    /// smaller for MAGMA-style uniform blocks executing small tiles
    /// (idle threads, Fig 3b); zero for bubble blocks (Fig 3a).
    pub active_threads: u32,
    /// Tiles assigned to this block by the batching engine.
    pub passes: Vec<TilePass>,
}

impl BlockWork {
    /// A bubble block: dispatched, does nothing, retires.
    pub fn bubble() -> Self {
        BlockWork { active_threads: 0, passes: Vec::new() }
    }

    pub fn is_bubble(&self) -> bool {
        self.passes.is_empty()
    }

    /// Warps with work, given the warp width.
    pub fn active_warps(&self, warp_size: u32) -> u32 {
        self.active_threads.div_ceil(warp_size)
    }
}

/// One CUDA-kernel equivalent: a uniform block footprint (the CUDA
/// programming model requires one block size per kernel) plus the
/// per-block work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Diagnostic label, e.g. `"magma_vbatch"` or `"gemm 2 of 5"`.
    pub name: String,
    /// The resource footprint shared by every block.
    pub footprint: BlockFootprint,
    /// One entry per thread block in the grid.
    pub blocks: Vec<BlockWork>,
    /// Whether the kernel uses the software-pipelined double buffering
    /// of Fig 2 (prefetch depth 2). The paper's kernels and the tuned
    /// single-GEMM library kernels do; MAGMA `vbatch` "only provides
    /// support for batched GEMM by expanding gridDim.z without the
    /// fine-grained tiling and batching optimizations" (§7), so its
    /// kernel runs at prefetch depth 1.
    pub software_pipelined: bool,
    /// Ablation hook: charge the pipeline-fill latency per *tile*
    /// instead of per block, disabling the cross-tile prefetch that
    /// makes multi-tile blocks attractive (DESIGN.md §3). Off by
    /// default.
    pub per_tile_fill: bool,
}

impl KernelDesc {
    pub fn new(name: impl Into<String>, footprint: BlockFootprint, blocks: Vec<BlockWork>) -> Self {
        KernelDesc {
            name: name.into(),
            footprint,
            blocks,
            software_pipelined: true,
            per_tile_fill: false,
        }
    }

    /// Mark the kernel as lacking software pipelining (prefetch depth 1).
    pub fn unpipelined(mut self) -> Self {
        self.software_pipelined = false;
        self
    }

    /// Ablation: disable cross-tile prefetching (fill paid per tile).
    pub fn without_cross_tile_prefetch(mut self) -> Self {
        self.per_tile_fill = true;
        self
    }

    /// Number of non-bubble blocks.
    pub fn useful_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.is_bubble()).count()
    }

    /// Number of bubble blocks.
    pub fn bubble_blocks(&self) -> usize {
        self.blocks.len() - self.useful_blocks()
    }
}

/// How a batched-GEMM execution reaches the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LaunchSequence {
    /// Default execution: kernels run one-by-one, each paying the launch
    /// overhead (§3 "default execution mode").
    Serial(Vec<KernelDesc>),
    /// Concurrent kernel execution on `streams` CUDA streams,
    /// round-robin assignment (§3's first optimisation direction).
    Streams { streams: usize, kernels: Vec<KernelDesc> },
    /// A single kernel for the whole batch (the paper's and MAGMA's
    /// approach).
    Single(KernelDesc),
}

impl LaunchSequence {
    /// All kernels in launch order.
    pub fn kernels(&self) -> Vec<&KernelDesc> {
        match self {
            LaunchSequence::Serial(ks) => ks.iter().collect(),
            LaunchSequence::Streams { kernels, .. } => kernels.iter().collect(),
            LaunchSequence::Single(k) => vec![k],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(it: u32) -> TilePass {
        TilePass {
            iterations: it,
            fma_per_thread: 32.0,
            ld_shared_per_thread: 8.0,
            ld_global_per_thread: 1.0,
            aux_per_thread: 4.0,
            epilogue_stores: 4.0,
        }
    }

    #[test]
    fn bubble_blocks_counted() {
        let fp = BlockFootprint::new(256, 32, 4096);
        let kd = KernelDesc::new(
            "k",
            fp,
            vec![BlockWork::bubble(), BlockWork { active_threads: 256, passes: vec![pass(4)] }],
        );
        assert_eq!(kd.useful_blocks(), 1);
        assert_eq!(kd.bubble_blocks(), 1);
    }

    #[test]
    fn active_warps_round_up() {
        let b = BlockWork { active_threads: 33, passes: vec![pass(1)] };
        assert_eq!(b.active_warps(32), 2);
        assert_eq!(BlockWork::bubble().active_warps(32), 0);
    }

    #[test]
    fn pass_instruction_count() {
        let p = pass(2);
        assert!((p.instructions_per_thread() - (2.0 * 45.0 + 4.0)).abs() < 1e-12);
        assert!(p.has_global_loads());
        let empty = TilePass { iterations: 0, ..p };
        assert!(!empty.has_global_loads());
    }

    #[test]
    fn launch_sequence_enumerates_kernels() {
        let fp = BlockFootprint::new(128, 32, 1024);
        let k = |n: &str| KernelDesc::new(n, fp, vec![]);
        let seq = LaunchSequence::Serial(vec![k("a"), k("b")]);
        assert_eq!(seq.kernels().len(), 2);
        let seq = LaunchSequence::Single(k("c"));
        assert_eq!(seq.kernels()[0].name, "c");
    }
}

//! Locality cost term for multi-chiplet devices.
//!
//! Multi-chiplet GPUs split HBM across an interposer: operands that are
//! not already resident on the placing device have to be re-staged over
//! the remote-bandwidth share, and pay a fixed interposer-crossing
//! latency on top. This module prices that crossing as a *routing
//! penalty* — it re-ranks placement candidates but is never folded into
//! the predicted (and later charged) execution time, which is what
//! keeps the cluster's zero-placement-error invariant intact.
//!
//! Like [`CostCorrection::identity`](crate::CostCorrection::identity),
//! the degenerate case short-circuits: a monolithic topology (or a zero
//! remote footprint) returns *exactly* `0.0`, so adding the term to a
//! candidate score on a single-chiplet pool is a bitwise no-op
//! (`x + 0.0 == x` for the non-negative finite scores the placer
//! produces).

use ctb_gpu_specs::ChipletTopology;

/// Extra microseconds a placement pays when `remote_bytes` of its
/// operand footprint must cross the interposer of `topo`.
///
/// `remote_bytes / remote_bandwidth` is the transfer term (GB/s ×
/// 1e9 B/s, so `bytes / (gbps · 1e3)` lands in µs) and
/// `interposer_latency_us` is the fixed crossing cost. Exactly `0.0`
/// when the topology is unified or nothing crosses.
pub fn locality_penalty_us(topo: &ChipletTopology, remote_bytes: u64) -> f64 {
    if topo.is_unified() || remote_bytes == 0 {
        return 0.0;
    }
    let transfer_us = remote_bytes as f64 / (topo.remote_bandwidth_gbps * 1.0e3);
    transfer_us + topo.interposer_latency_us
}

/// The remote share of an operand footprint on `topo` when the operands
/// are not resident: HBM striping leaves `1/chiplets` local to the
/// consuming chiplet and the rest across the interposer. `0` on
/// monolithic parts.
pub fn remote_operand_bytes(topo: &ChipletTopology, operand_bytes: u64) -> u64 {
    if topo.is_unified() {
        0
    } else {
        (operand_bytes as f64 * topo.remote_fraction()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorrectionSet, CostCorrection};
    use proptest::prelude::*;

    fn split_topo() -> impl Strategy<Value = ChipletTopology> {
        (2u32..=8, 100.0f64..10_000.0, 0.05f64..0.95, 0.0f64..16.0)
            .prop_map(|(c, total, f, lat)| ChipletTopology::split(c, total, f, lat))
    }

    #[test]
    fn unified_topology_is_exactly_free() {
        let u = ChipletTopology::unified(900.0);
        assert_eq!(locality_penalty_us(&u, 0), 0.0);
        assert_eq!(locality_penalty_us(&u, u64::MAX), 0.0);
        assert_eq!(remote_operand_bytes(&u, u64::MAX), 0);
    }

    #[test]
    fn split_topology_prices_the_crossing() {
        // 4 dies, 3000 GB/s total, 60% local => 1200 GB/s remote.
        // 1.2 MB remote = 1.2e6 / (1200 * 1e3) = 1.0 us + 4.0 us fixed.
        let t = ChipletTopology::split(4, 3000.0, 0.6, 4.0);
        let p = locality_penalty_us(&t, 1_200_000);
        assert!((p - 5.0).abs() < 1e-9, "penalty = {p}");
        // remote_fraction = 3/4 of the footprint crosses.
        assert_eq!(remote_operand_bytes(&t, 4096), 3072);
    }

    proptest! {
        /// More remote traffic never predicts cheaper placement.
        #[test]
        fn penalty_is_monotone_in_remote_bytes(
            topo in split_topo(),
            a in 0u64..1 << 40,
            b in 0u64..1 << 40,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(locality_penalty_us(&topo, lo) <= locality_penalty_us(&topo, hi));
        }

        /// Zero-crossing at single-chiplet topologies: the term is
        /// bitwise zero no matter the footprint, so score = score + 0.0
        /// leaves candidate ordering untouched.
        #[test]
        fn penalty_zero_crosses_at_unified(
            total in 1.0f64..10_000.0,
            bytes in 0u64..u64::MAX,
            score in 0.0f64..1e12,
        ) {
            let u = ChipletTopology::unified(total);
            let p = locality_penalty_us(&u, bytes);
            prop_assert_eq!(p.to_bits(), 0.0f64.to_bits());
            prop_assert_eq!((score + p).to_bits(), score.to_bits());
        }

        /// Positive whenever something actually crosses a real split.
        #[test]
        fn penalty_is_positive_for_real_crossings(
            topo in split_topo(),
            bytes in 1u64..1 << 40,
        ) {
            prop_assert!(locality_penalty_us(&topo, bytes) > 0.0);
        }

        /// `CorrectionSet` composition leaves the locality term intact:
        /// the penalty is added *after* the corrected model cost, so
        /// installing or clearing a correction changes the base cost but
        /// never the locality increment.
        #[test]
        fn correction_composition_leaves_locality_term_intact(
            topo in split_topo(),
            bytes in 0u64..1 << 40,
            model_us in 1.0f64..1e6,
            bias in -0.5f64..0.5,
            gain in 0.5f64..1.5,
        ) {
            let features = [96.0, 96.0, 192.0, 4.0];
            let mut coeffs = [0.0; crate::PHI_LEN];
            coeffs[0] = bias;
            coeffs[1] = gain;
            let mut set = CorrectionSet::identity();
            set.insert("B200", CostCorrection { coeffs });

            // The locality term is computed independently of the
            // correction machinery: installing a correction cannot
            // change a single bit of it.
            let before = locality_penalty_us(&topo, bytes);
            let corrected_base = set.correct("B200", model_us, &features);
            let after = locality_penalty_us(&topo, bytes);
            prop_assert_eq!(before.to_bits(), after.to_bits());

            // Added after the (corrected) base cost, the term never
            // makes a candidate cheaper — corrections rescale the base,
            // the locality increment survives on top.
            prop_assert!(corrected_base + before >= corrected_base);
            prop_assert!(model_us + before >= model_us);

            // And the identity correction composes to a bitwise no-op:
            // score(identity-corrected) == score(uncorrected), bits and
            // all, penalty included.
            let mut id = CorrectionSet::identity();
            id.insert("B200", CostCorrection::identity());
            prop_assert_eq!(
                (id.correct("B200", model_us, &features) + before).to_bits(),
                (model_us + before).to_bits()
            );
        }
    }
}

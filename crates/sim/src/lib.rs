//! Block-level GPU timing simulator.
//!
//! This crate is the substitute for the NVIDIA hardware the paper
//! evaluates on (see `DESIGN.md` §1/§3). A kernel is described as a set
//! of thread blocks, each executing one or more *tile passes* — the
//! main-loop structure of the paper's Fig 2 code skeleton. The simulator
//! computes kernel wall time from the mechanisms the paper reasons
//! about:
//!
//! * **TLP** — blocks are dispatched to SM residency slots (an
//!   event-driven greedy scheduler over `SMs × occupancy` slots); too few
//!   blocks leave SMs idle, and a slot serialises the blocks it hosts.
//! * **ILP** — a warp's main-loop iteration can hide global-memory
//!   latency only when enough independent work is resident: the round
//!   time is `max(A·c, L/D)` for `A` resident active warps, per-warp
//!   per-iteration issue cost `c`, memory latency `L` and software
//!   pipeline depth `D = 2` (double buffering).
//! * **Pipeline fill** — every block pays the first global-load latency
//!   once; a block executing several tiles pays it once *total* (the
//!   cross-tile prefetching of the batching engine), while one-tile
//!   blocks pay it per tile. This is the mechanical form of the paper's
//!   "batching along K improves ILP" argument.
//! * **Idle threads / bubble blocks** — threads beyond a tile's needs
//!   occupy residency without contributing work; empty blocks cost a
//!   dispatch. Both are MAGMA-`vbatch` artefacts the paper attacks.
//! * **Launch overhead** — serial kernel launches cost ~5 µs each;
//!   streams overlap execution but still serialise launches.

pub mod correction;
pub mod cost;
pub mod engine;
pub mod locality;
pub mod report;
pub mod streams;
pub mod timeline;

pub use correction::{phi, CorrectionSet, CostCorrection, MIN_CORRECTED_US, PHI_LEN};
pub use locality::{locality_penalty_us, remote_operand_bytes};
pub use cost::{BlockWork, KernelDesc, LaunchSequence, TilePass};
pub use engine::{simulate, simulate_kernel};
pub use report::{BoundBreakdown, KernelReport, SimReport};
pub use timeline::{capture_timeline, Timeline};

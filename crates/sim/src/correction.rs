//! Per-architecture affine corrections over the analytical model.
//!
//! The block-level simulator in this crate plays the role of silicon, and
//! the analytical cost model (ctb-core's memoized simulation) plays the
//! role of the paper's Eqs 2–4. Both are fit once against synthetic
//! parameters; real deployments drift — clocks throttle, memory buses
//! degrade, launch overheads grow with driver versions. ctb-calib closes
//! that loop offline by fitting a small least-squares correction per
//! [`ArchSpec`](https://docs.rs) name from recorded predicted-vs-actual
//! pairs; this module is the *runtime* half: the correction itself, kept
//! deliberately tiny so every predictor (event engine, threaded cluster,
//! serve sessions) can apply it on the hot path.
//!
//! A correction is affine over the feature vector
//!
//! ```text
//! φ(model_us, f) = [1, model_us, f[0], f[1], f[2], f[3]]
//! ```
//!
//! where `f` is ctb-core's selector feature vector `[m̄, n̄, k̄, B]`
//! (mean batch dimensions plus batch size). The identity correction —
//! and, equivalently, a [`CorrectionSet`] with no entry for an arch —
//! returns `model_us` bit-for-bit unchanged, which is what keeps every
//! zero-error / lockstep / savestate-parity invariant intact until a
//! calibrated profile is explicitly installed.

/// Number of terms in the correction feature vector φ.
pub const PHI_LEN: usize = 6;

/// Build φ from a raw model prediction and the 4-dim selector features.
/// Missing features are treated as zero so a short vector cannot panic.
pub fn phi(model_us: f64, features: &[f64]) -> [f64; PHI_LEN] {
    let f = |i: usize| features.get(i).copied().unwrap_or(0.0);
    [1.0, model_us, f(0), f(1), f(2), f(3)]
}

/// An affine correction `corrected = max(φ · coeffs, floor)` for one
/// architecture. [`CostCorrection::identity`] passes the model through
/// unchanged (coeffs `[0, 1, 0, 0, 0, 0]`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostCorrection {
    pub coeffs: [f64; PHI_LEN],
}

/// Corrected predictions are clamped here: a fit extrapolated onto an
/// unseen signature must never produce a zero or negative time (those
/// would corrupt backlog accounting downstream).
pub const MIN_CORRECTED_US: f64 = 1e-3;

impl CostCorrection {
    /// The pass-through correction: `corrected == model_us` exactly.
    pub fn identity() -> Self {
        CostCorrection { coeffs: [0.0, 1.0, 0.0, 0.0, 0.0, 0.0] }
    }

    /// True when applying this correction is a bitwise no-op.
    pub fn is_identity(&self) -> bool {
        self.coeffs == Self::identity().coeffs
    }

    /// Apply the correction to a raw model prediction.
    ///
    /// The identity correction short-circuits so it is bit-exact even
    /// where `0.0 * x + 1.0 * model` could round differently.
    pub fn apply(&self, model_us: f64, features: &[f64]) -> f64 {
        if self.is_identity() {
            return model_us;
        }
        let phi = phi(model_us, features);
        let mut out = 0.0;
        for (c, p) in self.coeffs.iter().zip(phi.iter()) {
            out += c * p;
        }
        out.max(MIN_CORRECTED_US)
    }
}

/// Corrections for a pool of architectures, keyed by `ArchSpec::name`.
///
/// Kept as a name-sorted `Vec` rather than a map: the set is tiny (one
/// entry per device class), lookups are a binary search, and the sorted
/// order gives the serialized profile a canonical byte layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorrectionSet {
    entries: Vec<(String, CostCorrection)>,
}

impl CorrectionSet {
    /// The empty set: every arch passes through uncorrected.
    pub fn identity() -> Self {
        CorrectionSet::default()
    }

    /// Insert (or replace) the correction for `arch`.
    pub fn insert(&mut self, arch: &str, correction: CostCorrection) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(arch)) {
            Ok(i) => self.entries[i].1 = correction,
            Err(i) => self.entries.insert(i, (arch.to_string(), correction)),
        }
    }

    /// The correction registered for `arch`, if any.
    pub fn get(&self, arch: &str) -> Option<&CostCorrection> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(arch))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Name-sorted view of every entry (serialization order).
    pub fn entries(&self) -> &[(String, CostCorrection)] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Correct a raw model prediction for `arch`. Arches without an
    /// entry — and the empty set in particular — return `model_us`
    /// bit-for-bit unchanged.
    pub fn correct(&self, arch: &str, model_us: f64, features: &[f64]) -> f64 {
        match self.get(arch) {
            Some(c) => c.apply(model_us, features),
            None => model_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_correction_is_bitwise_passthrough() {
        let c = CostCorrection::identity();
        for &us in &[0.0, 1e-9, 3.25, 1.0e12, f64::MIN_POSITIVE] {
            assert_eq!(c.apply(us, &[64.0, 64.0, 128.0, 4.0]).to_bits(), us.to_bits());
        }
    }

    #[test]
    fn empty_set_passes_every_arch_through() {
        let s = CorrectionSet::identity();
        assert!(s.is_empty());
        assert_eq!(s.correct("Tesla V100", 17.5, &[1.0, 2.0, 3.0, 4.0]).to_bits(), 17.5f64.to_bits());
    }

    #[test]
    fn affine_correction_applies_and_clamps() {
        let mut s = CorrectionSet::identity();
        s.insert("X", CostCorrection { coeffs: [2.0, 1.5, 0.0, 0.0, 0.0, 0.0] });
        // 2 + 1.5 * 10 = 17
        assert_eq!(s.correct("X", 10.0, &[]), 17.0);
        // other arches untouched
        assert_eq!(s.correct("Y", 10.0, &[]), 10.0);
        // wildly negative fit clamps to the floor instead of going <= 0
        s.insert("Z", CostCorrection { coeffs: [-100.0, 0.0, 0.0, 0.0, 0.0, 0.0] });
        assert_eq!(s.correct("Z", 10.0, &[]), MIN_CORRECTED_US);
    }

    #[test]
    fn insert_keeps_entries_sorted_and_replaces() {
        let mut s = CorrectionSet::identity();
        s.insert("b", CostCorrection::identity());
        s.insert("a", CostCorrection::identity());
        s.insert("c", CostCorrection::identity());
        let names: Vec<&str> = s.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        s.insert("b", CostCorrection { coeffs: [1.0; PHI_LEN] });
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("b").unwrap().coeffs, [1.0; PHI_LEN]);
    }

    #[test]
    fn phi_tolerates_short_feature_vectors() {
        assert_eq!(phi(2.0, &[]), [1.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(phi(2.0, &[3.0, 4.0]), [1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
    }
}

//! Execution-timeline capture: per-block scheduling events from the
//! slot scheduler, plus utilisation summaries and a text renderer.
//!
//! The timeline answers "where did the time go" questions the aggregate
//! report cannot: wave structure, slot imbalance, straggler blocks. It
//! re-runs the same deterministic scheduling as
//! [`crate::engine::simulate_kernel`], so the makespan matches the
//! report exactly.

use crate::cost::KernelDesc;
use crate::engine::{
    active_warps_at, block_time_detail, kernel_mean_iter_cost, mean_active_warps_per_block, rates,
};
use ctb_gpu_specs::{occupancy, ArchSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockEvent {
    /// Index in the kernel's grid (dispatch order).
    pub block: usize,
    /// Residency slot (SM × slot-within-SM).
    pub slot: usize,
    /// Start time in cycles.
    pub start: f64,
    /// End time in cycles.
    pub end: f64,
    /// Whether this is a bubble block.
    pub bubble: bool,
}

/// The full timeline of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    pub kernel: String,
    pub slots: usize,
    pub makespan: f64,
    pub events: Vec<BlockEvent>,
}

impl Timeline {
    /// Fraction of slot-time spent running blocks (1 = perfectly
    /// balanced, no tail).
    pub fn slot_utilisation(&self) -> f64 {
        if self.makespan <= 0.0 || self.slots == 0 {
            return 0.0;
        }
        let busy: f64 = self.events.iter().map(|e| e.end - e.start).sum();
        busy / (self.makespan * self.slots as f64)
    }

    /// Number of scheduling waves observed (max blocks on one slot).
    pub fn waves(&self) -> usize {
        let mut per_slot = std::collections::HashMap::new();
        for e in &self.events {
            *per_slot.entry(e.slot).or_insert(0usize) += 1;
        }
        per_slot.values().copied().max().unwrap_or(0)
    }

    /// The block that finishes last (the makespan-setting straggler).
    pub fn straggler(&self) -> Option<&BlockEvent> {
        self.events.iter().max_by(|a, b| a.end.total_cmp(&b.end))
    }

    /// Render an ASCII Gantt chart of the first `max_slots` slots,
    /// `width` characters wide.
    pub fn render(&self, max_slots: usize, width: usize) -> String {
        let mut out = format!(
            "{}: {} blocks on {} slots, makespan {:.0} cycles, utilisation {:.0}%\n",
            self.kernel,
            self.events.len(),
            self.slots,
            self.makespan,
            100.0 * self.slot_utilisation()
        );
        if self.makespan <= 0.0 {
            return out;
        }
        let scale = width as f64 / self.makespan;
        let shown: Vec<usize> = {
            let mut s: Vec<usize> = self.events.iter().map(|e| e.slot).collect();
            s.sort_unstable();
            s.dedup();
            s.into_iter().take(max_slots).collect()
        };
        for slot in shown {
            let mut row = vec![b'.'; width];
            for e in self.events.iter().filter(|e| e.slot == slot) {
                let a = ((e.start * scale) as usize).min(width.saturating_sub(1));
                let b = ((e.end * scale) as usize).clamp(a + 1, width);
                let ch = if e.bubble { b'o' } else { b'#' };
                for cell in &mut row[a..b] {
                    *cell = ch;
                }
            }
            out.push_str(&format!("slot {slot:>4} |{}|\n", String::from_utf8(row).expect("ascii")));
        }
        out
    }
}

/// Capture the timeline of one kernel (same scheduling as
/// [`crate::engine::simulate_kernel`]).
pub fn capture_timeline(arch: &ArchSpec, kd: &KernelDesc) -> Timeline {
    let occ = occupancy::occupancy(arch, &kd.footprint);
    assert!(occ.blocks_per_sm > 0, "infeasible footprint");
    let slots = (arch.sms * occ.blocks_per_sm) as usize;
    if kd.blocks.is_empty() {
        return Timeline { kernel: kd.name.clone(), slots, makespan: 0.0, events: Vec::new() };
    }
    let busy_sms = (kd.useful_blocks() as f64).min(arch.sms as f64);
    let r = rates(arch, busy_sms);
    let mean_warps = mean_active_warps_per_block(arch, kd);
    let c_bar = kernel_mean_iter_cost(arch, &r, &kd.blocks);
    let depth = if kd.software_pipelined { r.pipeline_depth } else { 1.0 };

    #[derive(PartialEq)]
    struct C(f64);
    impl Eq for C {}
    impl PartialOrd for C {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for C {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0)
        }
    }

    let mut heap: BinaryHeap<Reverse<(C, usize)>> =
        (0..slots).map(|s| Reverse((C(0.0), s))).collect();
    let mut events = Vec::with_capacity(kd.blocks.len());
    let mut makespan = 0.0f64;
    let mut remaining = kd.useful_blocks();
    for (i, block) in kd.blocks.iter().enumerate() {
        let Reverse((C(free), slot)) = heap.pop().expect("slots > 0");
        let a = active_warps_at(arch, &occ, mean_warps, remaining.max(1));
        let bt = block_time_detail(arch, &r, block, a, c_bar, depth, kd.per_tile_fill);
        let end = free + bt.cycles;
        events.push(BlockEvent { block: i, slot, start: free, end, bubble: block.is_bubble() });
        makespan = makespan.max(end);
        heap.push(Reverse((C(end), slot)));
        if !block.is_bubble() {
            remaining -= 1;
        }
    }
    Timeline { kernel: kd.name.clone(), slots, makespan, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BlockWork, TilePass};
    use crate::engine::simulate_kernel;
    use ctb_gpu_specs::BlockFootprint;

    fn kernel(blocks: usize, it: u32) -> KernelDesc {
        let pass = TilePass {
            iterations: it,
            fma_per_thread: 128.0,
            ld_shared_per_thread: 16.0,
            ld_global_per_thread: 1.0,
            aux_per_thread: 4.0,
            epilogue_stores: 4.0,
        };
        KernelDesc::new(
            "timeline",
            BlockFootprint::new(256, 48, 8192),
            vec![BlockWork { active_threads: 256, passes: vec![pass] }; blocks],
        )
    }

    #[test]
    fn timeline_makespan_matches_the_report() {
        let arch = ArchSpec::volta_v100();
        for blocks in [1usize, 80, 1000] {
            let kd = kernel(blocks, 16);
            let t = capture_timeline(&arch, &kd);
            let report = simulate_kernel(&arch, &kd);
            assert!((t.makespan - report.cycles).abs() < 1e-6, "{blocks} blocks");
            assert_eq!(t.events.len(), blocks);
        }
    }

    #[test]
    fn events_on_a_slot_never_overlap() {
        let arch = ArchSpec::volta_v100();
        let t = capture_timeline(&arch, &kernel(2000, 4));
        let mut per_slot: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
        for e in &t.events {
            per_slot.entry(e.slot).or_default().push((e.start, e.end));
        }
        for (slot, mut spans) in per_slot {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "slot {slot} overlaps: {w:?}");
            }
        }
    }

    #[test]
    fn waves_and_utilisation_behave() {
        let arch = ArchSpec::volta_v100();
        // Sub-wave: every block in wave 1, utilisation tied to how many
        // slots are used.
        let sub = capture_timeline(&arch, &kernel(80, 16));
        assert_eq!(sub.waves(), 1);
        // Multi-wave: more blocks per slot, higher utilisation.
        let multi = capture_timeline(&arch, &kernel(3000, 16));
        assert!(multi.waves() >= 2);
        assert!(multi.slot_utilisation() > 0.5);
        assert!(multi.slot_utilisation() <= 1.0 + 1e-9);
    }

    #[test]
    fn render_produces_a_gantt_chart() {
        let arch = ArchSpec::volta_v100();
        let t = capture_timeline(&arch, &kernel(10, 8));
        let text = t.render(4, 40);
        assert!(text.contains("10 blocks"));
        assert!(text.lines().count() >= 2);
        assert!(text.contains('#'));
    }

    #[test]
    fn straggler_is_the_last_finisher() {
        let arch = ArchSpec::volta_v100();
        let t = capture_timeline(&arch, &kernel(200, 8));
        let s = t.straggler().expect("non-empty");
        assert!((s.end - t.makespan).abs() < 1e-9);
    }
}

//! Concurrent kernel execution (CKE) on CUDA streams.
//!
//! The paper's §3 describes stream-based concurrency as the first prior
//! optimisation direction, noting its speedup is limited by
//! coarse-grained kernel scheduling. We model kernels as *malleable
//! jobs* over the SM pool:
//!
//! * launches serialise on the host — kernel `i` cannot start before
//!   `i · launch_overhead`;
//! * kernels on the same stream serialise among themselves;
//! * concurrently running kernels share the SMs with processor sharing,
//!   each capped at the SM count it could fill alone (`min(SMs,
//!   blocks)`), and no kernel finishes faster than it would alone.
//!
//! This captures exactly the coarse-grained effects the paper names:
//! overlap is possible, but quantised at kernel granularity and gated by
//! launch serialisation.

use crate::cost::KernelDesc;
use crate::engine::simulate_kernel;
use crate::report::{KernelReport, SimReport};
use ctb_gpu_specs::ArchSpec;

#[derive(Debug, Clone)]
struct Job {
    /// SM·cycles of work: solo duration × SMs used when alone.
    remaining_work: f64,
    /// Maximum SMs this kernel can occupy.
    max_sms: f64,
    /// Solo duration in cycles (a lower bound on its running time).
    solo_cycles: f64,
    /// Earliest start (host launch serialisation + stream ordering).
    release: f64,
    /// Set once the job starts running.
    start: Option<f64>,
    /// Set when the job completes.
    end: Option<f64>,
}

/// Simulate `kernels` issued round-robin over `streams` CUDA streams.
pub fn simulate_streams(arch: &ArchSpec, streams: usize, kernels: &[KernelDesc]) -> SimReport {
    assert!(streams > 0, "need at least one stream");
    let reports: Vec<KernelReport> = kernels.iter().map(|k| simulate_kernel(arch, k)).collect();
    if kernels.is_empty() {
        return SimReport { total_us: 0.0, kernels: reports };
    }

    let launch_gap = arch.us_to_cycles(arch.kernel_launch_overhead_us);
    let mut jobs: Vec<Job> = Vec::with_capacity(kernels.len());
    let mut stream_free = vec![0.0f64; streams];
    for (i, (kd, kr)) in kernels.iter().zip(&reports).enumerate() {
        let host_ready = (i + 1) as f64 * launch_gap;
        let stream = i % streams;
        let release = host_ready.max(stream_free[stream]);
        let max_sms = (kd.useful_blocks().max(1) as f64).min(arch.sms as f64);
        jobs.push(Job {
            remaining_work: kr.cycles * max_sms,
            max_sms,
            solo_cycles: kr.cycles,
            release,
            start: None,
            end: None,
        });
        // Stream ordering: the next kernel on this stream can only be
        // *released* once this one finishes; we don't know the finish
        // time yet, so we conservatively chain solo durations. The
        // processor-sharing loop below then enforces true ordering via
        // the release times.
        stream_free[stream] = release + kr.cycles;
    }

    // Processor-sharing event loop.
    let mut t = 0.0f64;
    loop {
        let unfinished: Vec<usize> =
            (0..jobs.len()).filter(|&i| jobs[i].end.is_none()).collect();
        if unfinished.is_empty() {
            break;
        }
        let running: Vec<usize> =
            unfinished.iter().copied().filter(|&i| jobs[i].release <= t + 1e-9).collect();
        if running.is_empty() {
            // Idle until the next release.
            t = unfinished
                .iter()
                .map(|&i| jobs[i].release)
                .fold(f64::INFINITY, f64::min);
            continue;
        }
        for &i in &running {
            jobs[i].start.get_or_insert(t);
        }
        // Fair shares, capped by each job's own parallelism; leftover SMs
        // are redistributed in a second pass.
        let total_sms = arch.sms as f64;
        let fair = total_sms / running.len() as f64;
        let mut share: Vec<f64> = running.iter().map(|&i| jobs[i].max_sms.min(fair)).collect();
        let leftover = total_sms - share.iter().sum::<f64>();
        if leftover > 0.0 {
            let hungry: Vec<usize> = (0..running.len())
                .filter(|&j| jobs[running[j]].max_sms > share[j] + 1e-9)
                .collect();
            if !hungry.is_empty() {
                let extra = leftover / hungry.len() as f64;
                for j in hungry {
                    let cap = jobs[running[j]].max_sms;
                    share[j] = (share[j] + extra).min(cap);
                }
            }
        }
        // Next event: earliest completion at current shares, or next
        // release.
        let mut dt = f64::INFINITY;
        for (j, &i) in running.iter().enumerate() {
            if share[j] > 0.0 {
                // A job may not finish before its solo critical path.
                let by_work = jobs[i].remaining_work / share[j];
                let start = jobs[i].start.expect("started");
                let by_floor = (start + jobs[i].solo_cycles) - t;
                dt = dt.min(by_work.max(by_floor).max(0.0));
            }
        }
        for &i in &unfinished {
            if jobs[i].release > t + 1e-9 {
                dt = dt.min(jobs[i].release - t);
            }
        }
        if !dt.is_finite() || dt <= 0.0 {
            dt = 1.0; // guaranteed forward progress
        }
        for (j, &i) in running.iter().enumerate() {
            jobs[i].remaining_work -= share[j] * dt;
        }
        t += dt;
        for &i in &running {
            let job = &mut jobs[i];
            let floor_ok = t + 1e-6 >= job.start.expect("started") + job.solo_cycles;
            if job.remaining_work <= 1e-6 && floor_ok {
                job.end = Some(t);
            }
        }
    }

    let end_cycles = jobs.iter().map(|j| j.end.expect("finished")).fold(0.0f64, f64::max);
    SimReport { total_us: arch.cycles_to_us(end_cycles), kernels: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{BlockWork, LaunchSequence, TilePass};
    use crate::engine::simulate;
    use ctb_gpu_specs::BlockFootprint;

    fn small_kernel(name: &str, blocks: usize) -> KernelDesc {
        let pass = TilePass {
            iterations: 16,
            fma_per_thread: 128.0,
            ld_shared_per_thread: 16.0,
            ld_global_per_thread: 1.0,
            aux_per_thread: 4.0,
            epilogue_stores: 4.0,
        };
        KernelDesc::new(
            name,
            BlockFootprint::new(256, 48, 8192),
            vec![BlockWork { active_threads: 256, passes: vec![pass] }; blocks],
        )
    }

    #[test]
    fn streams_beat_serial_for_many_small_kernels() {
        let arch = ArchSpec::volta_v100();
        // 16 kernels of 8 blocks each: each fills 10% of the device.
        let kernels: Vec<KernelDesc> =
            (0..16).map(|i| small_kernel(&format!("k{i}"), 8)).collect();
        let serial = simulate(&arch, &LaunchSequence::Serial(kernels.clone()));
        let streamed = simulate(&arch, &LaunchSequence::Streams { streams: 8, kernels });
        assert!(
            streamed.total_us < serial.total_us,
            "streams {} vs serial {}",
            streamed.total_us,
            serial.total_us
        );
    }

    #[test]
    fn streams_cannot_beat_launch_serialisation() {
        let arch = ArchSpec::volta_v100();
        let kernels: Vec<KernelDesc> =
            (0..10).map(|i| small_kernel(&format!("k{i}"), 8)).collect();
        let streamed = simulate(&arch, &LaunchSequence::Streams { streams: 10, kernels });
        // 10 launches of ~5 us must serialise on the host.
        assert!(streamed.total_us >= 10.0 * arch.kernel_launch_overhead_us);
    }

    #[test]
    fn one_stream_degenerates_to_serial_order() {
        let arch = ArchSpec::volta_v100();
        let kernels: Vec<KernelDesc> =
            (0..4).map(|i| small_kernel(&format!("k{i}"), 40)).collect();
        let serial = simulate(&arch, &LaunchSequence::Serial(kernels.clone()));
        let one_stream = simulate(&arch, &LaunchSequence::Streams { streams: 1, kernels });
        // One stream keeps kernel execution serial, but launches are
        // asynchronous, so it may pipeline launch overhead into
        // execution — somewhat faster than synchronous serial mode,
        // never slower.
        let ratio = one_stream.total_us / serial.total_us;
        assert!((0.5..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn a_device_filling_kernel_gains_nothing_from_streams() {
        let arch = ArchSpec::volta_v100();
        let kernels = vec![small_kernel("big", 640)];
        let single = simulate(&arch, &LaunchSequence::Single(kernels[0].clone()));
        let streamed = simulate(&arch, &LaunchSequence::Streams { streams: 4, kernels });
        assert!(streamed.total_us >= single.total_us * 0.95);
    }

    #[test]
    fn empty_stream_sequence_is_zero() {
        let arch = ArchSpec::volta_v100();
        let r = simulate(&arch, &LaunchSequence::Streams { streams: 4, kernels: vec![] });
        assert_eq!(r.total_us, 0.0);
    }
}

//! The timing engine: per-block analytical model + event-driven slot
//! scheduler.
//!
//! See the crate docs and `DESIGN.md` §3 for the model. In short, for a
//! kernel with average `A` resident *active* warps per SM, a warp's
//! main-loop iteration of per-warp issue cost `c` completes one *round*
//! every `max(A·c, L/D)` cycles (`L` = global latency, `D` = pipeline
//! depth from double buffering); a block's wall time is its dispatch +
//! one pipeline fill + the rounds of all its tiles; blocks are placed on
//! `SMs × occupancy` residency slots by a greedy earliest-free-slot
//! scheduler, and a slot executes its blocks serially (a new block
//! launches only when its predecessor retires — as on hardware).

use crate::cost::{BlockWork, KernelDesc, LaunchSequence, TilePass};
use crate::report::{BoundBreakdown, KernelReport, SimReport};
use crate::streams::simulate_streams;
use ctb_gpu_specs::{occupancy, ArchSpec, Occupancy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-warp-instruction execution costs in SM cycles, derived from the
/// architecture. `global` embeds the per-SM DRAM bandwidth share, so it
/// depends on how many SMs the kernel keeps busy.
#[derive(Debug, Clone, Copy)]
pub struct Rates {
    /// Cycles per warp FMA instruction (32 lanes / SM FP32 lanes).
    pub fma: f64,
    /// Cycles per warp shared-memory load (one 128 B access per cycle).
    pub shared: f64,
    /// Cycles per warp global load/store: 128 B over the per-busy-SM
    /// bandwidth share, floored at one issue cycle.
    pub global: f64,
    /// Cycles per auxiliary (integer/address) warp instruction.
    pub aux: f64,
    /// Software-pipeline depth (double buffering, Fig 2).
    pub pipeline_depth: f64,
    /// Exposed intra-warp dependency stall per iteration, in cycles: a
    /// warp running alone cannot advance faster than `c + intra_stall`
    /// per iteration because its shared-load → FMA chains stall the
    /// pipeline (≈ two shared-memory round trips).
    pub intra_warp_stall: f64,
    /// Cycles to switch between tiles of the same block (index parsing,
    /// Fig 7 lines 6–16).
    pub tile_switch: f64,
    /// Cycles of a block-wide `__syncthreads` at tile epilogue.
    pub sync: f64,
}

/// Derive the cost rates for a kernel that keeps `busy_sms` SMs busy.
pub fn rates(arch: &ArchSpec, busy_sms: f64) -> Rates {
    let busy = busy_sms.clamp(1.0, arch.sms as f64);
    let bytes_per_cycle_per_busy_sm =
        arch.mem_bandwidth_gbps * 1.0e9 / (busy * arch.clock_ghz * 1.0e9);
    Rates {
        fma: 32.0 / arch.fp32_lanes_per_sm as f64,
        // Shared loads largely dual-issue with the FMA pipe.
        shared: 0.5,
        global: (128.0 / bytes_per_cycle_per_busy_sm).max(1.0),
        aux: 1.0 / arch.issue_width as f64,
        pipeline_depth: 2.0,
        intra_warp_stall: 2.0 * arch.shared_mem_latency as f64,
        tile_switch: 40.0,
        sync: 30.0,
    }
}

/// Per-warp issue/execution cost of one main-loop iteration, in SM
/// cycles (the `c` of the round formula).
pub fn warp_iter_cost(r: &Rates, p: &TilePass) -> f64 {
    p.fma_per_thread * r.fma
        + p.ld_shared_per_thread * r.shared
        + p.ld_global_per_thread * r.global
        + p.aux_per_thread * r.aux
}

/// Iteration-weighted mean per-warp iteration cost across a kernel's
/// blocks: the work the *other* resident warps contribute per round in a
/// kernel that mixes tile strategies (and hence iteration costs).
pub fn kernel_mean_iter_cost(arch: &ArchSpec, r: &Rates, blocks: &[BlockWork]) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for b in blocks {
        let w = b.active_warps(arch.warp_size) as f64;
        for p in &b.passes {
            let it = p.iterations as f64;
            num += it * w * warp_iter_cost(r, p);
            den += it * w;
        }
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Which constraint set a main-loop round's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundBound {
    /// SM issue/bandwidth throughput shared among the resident warps.
    Throughput,
    /// Exposed global-memory latency the other warps could not cover.
    MemoryLatency,
    /// The per-warp intra-iteration dependency floor.
    Dependency,
}

/// Detailed timing of one block: total cycles plus the cycles spent in
/// rounds attributed to each binding constraint and in fixed overheads
/// (dispatch, fill, epilogues, tile switches).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockTime {
    pub cycles: f64,
    pub throughput_cycles: f64,
    pub latency_cycles: f64,
    pub dependency_cycles: f64,
    pub overhead_cycles: f64,
}

/// Wall time of one block given the kernel-wide average active warp
/// count `a` per SM, the kernel-mean per-warp iteration cost `c_bar`
/// (what co-resident warps execute per round), and the kernel's prefetch
/// depth.
pub fn block_time_detail(
    arch: &ArchSpec,
    r: &Rates,
    block: &BlockWork,
    a: f64,
    c_bar: f64,
    prefetch_depth: f64,
    per_tile_fill: bool,
) -> BlockTime {
    let mut bt = BlockTime { cycles: arch.block_dispatch_cycles as f64, ..BlockTime::default() };
    bt.overhead_cycles = bt.cycles;
    if block.is_bubble() {
        return bt;
    }
    let lat = arch.global_mem_latency as f64;
    // One exposed pipeline fill for the whole block: the persistent-tile
    // loop prefetches the next tile's first fragments during the current
    // tile's epilogue, so only the first tile pays it. (The per-tile
    // variant is the cross-tile-prefetch ablation.)
    let fills = if per_tile_fill {
        block.passes.iter().filter(|p| p.has_global_loads()).count() as f64
    } else {
        f64::from(block.passes.iter().any(TilePass::has_global_loads))
    };
    bt.cycles += fills * lat;
    bt.overhead_cycles += fills * lat;
    for (i, p) in block.passes.iter().enumerate() {
        // A round advances every resident warp by one iteration: the SM
        // serialises its own instructions (own cost `c`) with the other
        // A−1 warps' (kernel-average cost `c_bar`). Bounds: issue
        // throughput; exposed memory latency (the part of L/depth the
        // other warps' work cannot cover); per-warp dependency stalls.
        let c = warp_iter_cost(r, p);
        let others = (a - 1.0).max(0.0) * c_bar;
        let mut candidates = vec![
            (c + others, RoundBound::Throughput),
            (c + r.intra_warp_stall, RoundBound::Dependency),
        ];
        if p.has_global_loads() {
            let exposed = (lat / prefetch_depth - others).max(0.0);
            candidates.push((c + exposed, RoundBound::MemoryLatency));
        }
        let (round, bound) = candidates
            .into_iter()
            .max_by(|x, y| x.0.total_cmp(&y.0))
            .expect("non-empty candidates");
        let pass_cycles = p.iterations as f64 * round;
        bt.cycles += pass_cycles;
        match bound {
            RoundBound::Throughput => bt.throughput_cycles += pass_cycles,
            RoundBound::MemoryLatency => bt.latency_cycles += pass_cycles,
            RoundBound::Dependency => bt.dependency_cycles += pass_cycles,
        }
        let epi = p.epilogue_stores * r.global + r.sync;
        bt.cycles += epi;
        bt.overhead_cycles += epi;
        if i + 1 < block.passes.len() {
            bt.cycles += r.tile_switch;
            bt.overhead_cycles += r.tile_switch;
        }
    }
    bt
}

/// Wall time of one block in cycles (see [`block_time_detail`]).
pub fn block_time_cycles(
    arch: &ArchSpec,
    r: &Rates,
    block: &BlockWork,
    a: f64,
    c_bar: f64,
    prefetch_depth: f64,
) -> f64 {
    block_time_detail(arch, r, block, a, c_bar, prefetch_depth, false).cycles
}

/// Mean active warps per useful block.
pub(crate) fn mean_active_warps_per_block(arch: &ArchSpec, kd: &KernelDesc) -> f64 {
    let useful = kd.useful_blocks();
    if useful == 0 {
        return 0.0;
    }
    let total: f64 = kd.blocks.iter().map(|b| b.active_warps(arch.warp_size) as f64).sum();
    total / useful as f64
}

/// Active warps per SM experienced by a block dispatched while
/// `remaining_useful` useful blocks (including itself) are still in
/// flight — the latency-hiding term. Tail blocks see less contention
/// than full waves; idle threads (MAGMA's uniform blocks running small
/// tiles) occupy residency but contribute nothing here.
pub(crate) fn active_warps_at(
    arch: &ArchSpec,
    occ: &Occupancy,
    mean_warps_per_block: f64,
    remaining_useful: usize,
) -> f64 {
    let concurrency = (remaining_useful as f64 / arch.sms as f64)
        .clamp(1.0, occ.blocks_per_sm.max(1) as f64);
    (mean_warps_per_block * concurrency).max(1.0)
}

/// Wrapper giving `f64` a total order for the scheduler heap.
#[derive(PartialEq)]
struct Cycles(f64);

impl Eq for Cycles {}
impl PartialOrd for Cycles {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cycles {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Simulate one kernel in isolation; returns its report (duration
/// excludes the launch overhead, which belongs to the launch sequence).
pub fn simulate_kernel(arch: &ArchSpec, kd: &KernelDesc) -> KernelReport {
    let occ = occupancy::occupancy(arch, &kd.footprint);
    assert!(
        occ.blocks_per_sm > 0,
        "kernel {} has an infeasible block footprint {:?}",
        kd.name,
        kd.footprint
    );
    if kd.blocks.is_empty() {
        return KernelReport {
            name: kd.name.clone(),
            cycles: 0.0,
            us: 0.0,
            blocks: 0,
            bubble_blocks: 0,
            occupancy: occ,
            avg_active_warps: 0.0,
            waves: 0.0,
            bound_breakdown: BoundBreakdown::default(),
        };
    }

    let busy_sms = (kd.useful_blocks() as f64).min(arch.sms as f64);
    let r = rates(arch, busy_sms);
    let mean_warps = mean_active_warps_per_block(arch, kd);
    let a_kernel = active_warps_at(arch, &occ, mean_warps, kd.useful_blocks());
    let c_bar = kernel_mean_iter_cost(arch, &r, &kd.blocks);
    let prefetch_depth = if kd.software_pipelined { r.pipeline_depth } else { 1.0 };

    let slots = (arch.sms * occ.blocks_per_sm) as usize;
    // Greedy earliest-free-slot assignment; ties resolve to the lowest
    // slot index, giving the breadth-first placement real rasterisers
    // use. A slot runs its blocks serially.
    let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> =
        (0..slots).map(|s| Reverse((Cycles(0.0), s))).collect();
    let mut makespan = 0.0f64;
    let mut remaining_useful = kd.useful_blocks();
    let mut totals = BlockTime::default();
    for block in &kd.blocks {
        let Reverse((Cycles(free), slot)) = heap.pop().expect("slots > 0");
        // Contention seen by this block: the useful blocks still in
        // flight when it dispatches (tail blocks run lighter).
        let a = active_warps_at(arch, &occ, mean_warps, remaining_useful.max(1));
        let bt = block_time_detail(arch, &r, block, a, c_bar, prefetch_depth, kd.per_tile_fill);
        let end = free + bt.cycles;
        makespan = makespan.max(end);
        heap.push(Reverse((Cycles(end), slot)));
        totals.cycles += bt.cycles;
        totals.throughput_cycles += bt.throughput_cycles;
        totals.latency_cycles += bt.latency_cycles;
        totals.dependency_cycles += bt.dependency_cycles;
        totals.overhead_cycles += bt.overhead_cycles;
        if !block.is_bubble() {
            remaining_useful -= 1;
        }
    }

    let frac = |x: f64| if totals.cycles > 0.0 { x / totals.cycles } else { 0.0 };
    KernelReport {
        name: kd.name.clone(),
        cycles: makespan,
        us: arch.cycles_to_us(makespan),
        blocks: kd.blocks.len(),
        bubble_blocks: kd.bubble_blocks(),
        occupancy: occ,
        avg_active_warps: a_kernel,
        waves: kd.blocks.len() as f64 / slots as f64,
        bound_breakdown: BoundBreakdown {
            throughput: frac(totals.throughput_cycles),
            memory_latency: frac(totals.latency_cycles),
            dependency: frac(totals.dependency_cycles),
            overhead: frac(totals.overhead_cycles),
        },
    }
}

/// Simulate a full launch sequence and return the end-to-end report.
pub fn simulate(arch: &ArchSpec, seq: &LaunchSequence) -> SimReport {
    match seq {
        LaunchSequence::Single(kd) => {
            let kr = simulate_kernel(arch, kd);
            let total = arch.kernel_launch_overhead_us + kr.us;
            SimReport { total_us: total, kernels: vec![kr] }
        }
        LaunchSequence::Serial(kds) => {
            let kernels: Vec<KernelReport> = kds.iter().map(|k| simulate_kernel(arch, k)).collect();
            let total = kernels
                .iter()
                .map(|k| k.us + arch.kernel_launch_overhead_us)
                .sum();
            SimReport { total_us: total, kernels }
        }
        LaunchSequence::Streams { streams, kernels } => simulate_streams(arch, *streams, kernels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctb_gpu_specs::BlockFootprint;

    fn v100() -> ArchSpec {
        ArchSpec::volta_v100()
    }

    fn gemm_pass(iterations: u32) -> TilePass {
        // A "large/256" style tile: 4x4 sub-tile, BK 8.
        TilePass {
            iterations,
            fma_per_thread: 128.0,
            ld_shared_per_thread: 16.0,
            ld_global_per_thread: 1.0,
            aux_per_thread: 4.0,
            epilogue_stores: 4.0,
        }
    }

    fn kernel(name: &str, blocks: Vec<BlockWork>) -> KernelDesc {
        KernelDesc::new(name, BlockFootprint::new(256, 48, 8192), blocks)
    }

    fn work(tiles: usize, iterations: u32) -> BlockWork {
        BlockWork { active_threads: 256, passes: vec![gemm_pass(iterations); tiles] }
    }

    #[test]
    fn more_iterations_take_longer() {
        let arch = v100();
        let short = simulate_kernel(&arch, &kernel("s", vec![work(1, 4); 80]));
        let long = simulate_kernel(&arch, &kernel("l", vec![work(1, 64); 80]));
        assert!(long.cycles > short.cycles * 4.0, "short {} long {}", short.cycles, long.cycles);
    }

    #[test]
    fn parallelism_helps_until_saturation() {
        // Fixed total work: N blocks of 64/N iterations each. More
        // blocks (up to device capacity) must not be slower.
        let arch = v100();
        let few = simulate_kernel(&arch, &kernel("few", vec![work(1, 64); 10]));
        let many = simulate_kernel(&arch, &kernel("many", vec![work(1, 8); 80]));
        assert!(
            many.cycles < few.cycles,
            "few(10 blocks x 64 it) {} vs many(80 x 8) {}",
            few.cycles,
            many.cycles
        );
    }

    #[test]
    fn batched_tiles_amortise_fill_and_dispatch() {
        // Same tile work, 2 tiles per block vs 2 blocks: at short K the
        // batched form must win (one fill + one dispatch instead of two).
        let arch = v100();
        let separate = simulate_kernel(&arch, &kernel("sep", vec![work(1, 2); 1280]));
        let batched = simulate_kernel(&arch, &kernel("bat", vec![work(2, 2); 640]));
        assert!(
            batched.cycles < separate.cycles,
            "batched {} vs separate {}",
            batched.cycles,
            separate.cycles
        );
    }

    #[test]
    fn bubble_blocks_cost_dispatch_only_but_not_zero() {
        // A bubble-dominated grid (MAGMA vbatch with one giant GEMM and
        // many tiny ones) must cost more than the clean grid, but far
        // less than dispatching the same number of *real* blocks.
        let arch = v100();
        let clean = simulate_kernel(&arch, &kernel("clean", vec![work(1, 8); 100]));
        let mut blocks = vec![work(1, 8); 100];
        blocks.extend(std::iter::repeat_with(BlockWork::bubble).take(100_000));
        let bubbly = simulate_kernel(&arch, &kernel("bubbly", blocks));
        assert!(bubbly.cycles > clean.cycles, "bubbles must cost something");
        let real = simulate_kernel(&arch, &kernel("real", vec![work(1, 8); 100_100]));
        assert!(bubbly.cycles < real.cycles / 2.0);
    }

    #[test]
    fn idle_threads_slow_a_kernel_down() {
        // MAGMA's uniform 256-thread blocks executing a small tile keep
        // only 32 threads busy; the same tiles in right-sized 32-thread
        // blocks enjoy more resident active warps and finish sooner.
        let arch = v100();
        let small_tile = TilePass {
            iterations: 8,
            fma_per_thread: 16.0,
            ld_shared_per_thread: 4.0,
            ld_global_per_thread: 0.5,
            aux_per_thread: 4.0,
            epilogue_stores: 4.0,
        };
        let blocks: Vec<BlockWork> = (0..1600)
            .map(|_| BlockWork { active_threads: 32, passes: vec![small_tile] })
            .collect();
        let idle = simulate_kernel(
            &arch,
            &KernelDesc::new("idle", BlockFootprint::new(256, 48, 2048), blocks.clone()),
        );
        let right_sized = simulate_kernel(
            &arch,
            &KernelDesc::new("right", BlockFootprint::new(32, 48, 2048), blocks),
        );
        assert!(
            idle.cycles > right_sized.cycles * 1.05,
            "idle {} vs right-sized {}",
            idle.cycles,
            right_sized.cycles
        );
        assert!(idle.avg_active_warps < right_sized.avg_active_warps);
    }

    #[test]
    fn serial_launches_pay_overhead_per_kernel() {
        let arch = v100();
        let k = kernel("k", vec![work(1, 8); 80]);
        let single = simulate(&arch, &LaunchSequence::Single(k.clone()));
        let serial = simulate(&arch, &LaunchSequence::Serial(vec![k.clone(), k.clone()]));
        assert!(serial.total_us > single.total_us * 1.9);
        assert!(serial.total_us >= 2.0 * arch.kernel_launch_overhead_us);
    }

    #[test]
    fn empty_kernel_is_free() {
        let arch = v100();
        let kr = simulate_kernel(&arch, &kernel("empty", vec![]));
        assert_eq!(kr.cycles, 0.0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_footprint_panics() {
        let arch = v100();
        let kd = KernelDesc::new("bad", BlockFootprint::new(2048, 16, 0), vec![work(1, 1)]);
        simulate_kernel(&arch, &kd);
    }

    #[test]
    fn efficiency_is_plausible_for_a_big_uniform_kernel() {
        // 320 large-tile blocks, K = 512 (64 iterations): the device
        // should land in the 40–95% of-peak band — neither absurdly slow
        // nor above peak.
        let arch = v100();
        let kr = simulate_kernel(&arch, &kernel("big", vec![work(1, 64); 320]));
        // Each block: 64 iterations x 256 threads x 128 FMA = 2.097 MFMA.
        let flops = 320.0 * 64.0 * 256.0 * 128.0 * 2.0;
        let gflops = flops / (kr.us * 1000.0);
        let frac = gflops / arch.peak_gflops();
        assert!((0.40..0.98).contains(&frac), "efficiency {frac}");
    }

    #[test]
    fn bound_breakdown_distinguishes_regimes() {
        // A big well-occupied kernel is throughput-bound; a lone
        // low-work block is latency/dependency-bound; fractions sum to 1.
        let arch = v100();
        let busy = simulate_kernel(&arch, &kernel("busy", vec![work(1, 64); 640]));
        assert!(
            busy.bound_breakdown.throughput > 0.5,
            "busy kernel breakdown {:?}",
            busy.bound_breakdown
        );
        let lone = simulate_kernel(
            &arch,
            &kernel("lone", vec![BlockWork { active_threads: 32, passes: vec![gemm_pass(64)] }]),
        );
        assert!(
            lone.bound_breakdown.memory_latency + lone.bound_breakdown.dependency
                > lone.bound_breakdown.throughput,
            "lone kernel breakdown {:?}",
            lone.bound_breakdown
        );
        for b in [busy.bound_breakdown, lone.bound_breakdown] {
            let sum = b.throughput + b.memory_latency + b.dependency + b.overhead;
            assert!((0.99..=1.01).contains(&sum), "fractions sum to {sum}");
        }
    }

    #[test]
    fn latency_bound_when_single_warp_per_sm() {
        // One block with one active warp and negligible issue work per
        // iteration: the round must be pinned at L/D.
        let arch = v100();
        let p = TilePass {
            iterations: 100,
            fma_per_thread: 1.0,
            ld_shared_per_thread: 0.0,
            ld_global_per_thread: 0.5,
            aux_per_thread: 0.0,
            epilogue_stores: 0.0,
        };
        let kd = KernelDesc::new(
            "lone",
            BlockFootprint::new(32, 32, 1024),
            vec![BlockWork { active_threads: 32, passes: vec![p] }],
        );
        let kr = simulate_kernel(&arch, &kd);
        let lat_bound = 100.0 * arch.global_mem_latency as f64 / 2.0;
        assert!(kr.cycles >= lat_bound, "cycles {} < latency bound {}", kr.cycles, lat_bound);
    }
}

#!/usr/bin/env sh
# Tier-1 gate: everything CI (and the next contributor) needs to pass
# before merging. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo build --release --examples =="
cargo build --release --examples

echo "== cargo test -q =="
cargo test -q

echo "== differential conformance suite =="
cargo test -q --test differential

echo "== concurrency suites (serve stress + planning determinism) =="
cargo test -q -p ctb-serve --test stress
cargo test -q --test determinism

echo "== chaos suite (seeded fault injection against ctb-serve) =="
cargo test -q -p ctb-serve --test chaos

echo "== async front door differential suite (blocking vs buffered admission) =="
cargo test -q -p ctb-serve --test async_front

echo "== property suites (bounded-queue invariants) =="
cargo test -q -p ctb-serve invariant_props

echo "== property suites (Bloom admission-gate invariants) =="
cargo test -q --test properties bloom_gate

echo "== property regression corpus (pinned shrunk cases) =="
cargo test -q --test properties regression_corpus_replays_recorded_cases

echo "== cluster suite (multi-device routing + device-level chaos) =="
cargo test -q -p ctb-cluster

echo "== observability suite (event bus + trace audit + histogram props) =="
cargo build --release -p ctb-obs
cargo test -q -p ctb-obs
cargo test -q -p ctb-serve --test obs

echo "== observability harness + BENCH_obs.json schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- obs

echo "== cluster lockstep suite (event engine vs threaded, decision parity) =="
cargo test -q -p ctb-cluster --test lockstep

echo "== savestate codec (versioned binary reader/writer) =="
cargo test -q -p ctb-savestate

echo "== savestate crash-point differential suite (checkpoint/restore replay) =="
cargo test -q -p ctb-cluster --test savestate

echo "== savestate regression corpus (pinned crash-boundary cases) =="
cargo test -q -p ctb-cluster --test savestate regression_corpus_replays_recorded_boundary_cases

echo "== differential locality suite (aware vs blind on multi-chiplet pools) =="
cargo test -q -p ctb-cluster --test locality

echo "== locality differential smoke (aware vs blind traffic gate) + BENCH_locality schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- locality --smoke

echo "== cluster smoke sweep (256 devices / 100k requests) + BENCH_cluster schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- cluster --smoke

echo "== replay harness smoke (record -> re-run -> crash/restore) + BENCH_replay schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- replay --smoke

echo "== storm harness smoke (plan-cache admission under distinct-shape storm) + BENCH_storm schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- storm --smoke

echo "== calibration suite (offline fit + retrain + hot-swap under load) =="
cargo test -q -p ctb-calib

echo "== calibration loop smoke (record -> fit -> replay -> swap) + BENCH_calibrate schema gate =="
cargo run -q -p ctb-bench --bin reproduce --release -- calibrate --smoke

echo "== cluster demo compiles against the release profile =="
cargo build --release --example cluster_demo

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo clippy -p ctb-core --all-targets -- -D warnings =="
cargo clippy -p ctb-core --all-targets -- -D warnings

echo "== cargo clippy -p ctb-matrix --all-targets -- -D warnings =="
cargo clippy -p ctb-matrix --all-targets -- -D warnings

echo "== cargo clippy -p ctb-serve --all-targets -- -D warnings =="
cargo clippy -p ctb-serve --all-targets -- -D warnings

echo "== cargo clippy -p ctb-cluster --all-targets -- -D warnings =="
cargo clippy -p ctb-cluster --all-targets -- -D warnings

echo "== cargo clippy -p ctb-obs --all-targets -- -D warnings =="
cargo clippy -p ctb-obs --all-targets -- -D warnings

echo "== cargo clippy -p ctb-savestate --all-targets -- -D warnings =="
cargo clippy -p ctb-savestate --all-targets -- -D warnings

echo "== cargo clippy -p ctb-calib --all-targets -- -D warnings =="
cargo clippy -p ctb-calib --all-targets -- -D warnings

echo "== cargo clippy -p ctb-gpu-specs --all-targets -- -D warnings =="
cargo clippy -p ctb-gpu-specs --all-targets -- -D warnings

echo "== cargo clippy -p ctb-sim --all-targets -- -D warnings =="
cargo clippy -p ctb-sim --all-targets -- -D warnings

echo "== cargo clippy -p ctb-bench --all-targets -- -D warnings =="
cargo clippy -p ctb-bench --all-targets -- -D warnings

echo "check.sh: all gates passed"

#!/usr/bin/env sh
# Tier-1 gate: everything CI (and the next contributor) needs to pass
# before merging. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "check.sh: all gates passed"

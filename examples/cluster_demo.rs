//! Cluster-layer demo: a heterogeneous pool of simulated GPUs serves a
//! mixed-shape burst, with the paper's analytical cost model deciding
//! which device each coordinated batch runs on. Mid-burst the fastest
//! device is killed; its queued batches re-route and every result still
//! comes back bitwise-identical to the exact oracle.
//!
//! ```text
//! cargo run --example cluster_demo --release
//! ```

use ctb::prelude::*;
use std::time::Duration;

fn main() {
    const BATCHES: usize = 24;

    // A V100 + Titan Xp + GTX 1080 Ti pool (fastest-first presets).
    let pool = ArchSpec::pool_presets(3);
    let names: Vec<_> = pool.iter().map(|a| a.name).collect();
    let cluster = Cluster::new(
        pool,
        ClusterConfig {
            queue_capacity: BATCHES,
            steal: StealPolicy { enabled: false, ..StealPolicy::default() },
            ..ClusterConfig::default()
        },
    );

    // A burst of variable-size coordinated batches: submit everything,
    // keep each batch's exact oracle for the final bitwise check.
    let mix: [&[GemmShape]; 3] = [
        &[GemmShape::new(48, 48, 256); 3],
        &[GemmShape::new(32, 64, 128); 4],
        &[GemmShape::new(24, 24, 96); 6],
    ];
    let batches: Vec<GemmBatch> = (0..BATCHES)
        .map(|i| GemmBatch::random(mix[i % mix.len()], 1.0, 0.5, i as u64))
        .collect();
    let oracles: Vec<_> = batches.iter().map(GemmBatch::reference_result_exact).collect();
    let tickets: Vec<_> = batches
        .into_iter()
        .map(|b| cluster.submit(b).expect("admitted"))
        .collect();

    // Kill the V100 while its queue is loaded: queued work must move.
    cluster.kill_device(0);

    for (t, oracle) in tickets.into_iter().zip(&oracles) {
        let out = t
            .wait_for(Duration::from_secs(120))
            .expect("zero drops across the kill");
        ctb::matrix::assert_bitwise_eq(oracle, &out.results, "clustered result vs oracle");
    }

    let stats = cluster.shutdown();
    println!("== ctb-cluster demo: sim-cost routing + kill-one-device failover ==\n");
    println!("pool: {}", names.join(", "));
    println!(
        "completed {}/{} batches, every result bitwise-verified; {} re-routed off the dead V100",
        stats.completed, stats.submitted, stats.reroutes
    );
    for d in &stats.devices {
        println!(
            "  device {} {:<13} placed {:>2} | completed {:>2} | busy {:>8.1} sim us | alive: {}",
            d.id, d.name, d.placements, d.completed, d.busy_sim_us, d.alive
        );
    }
    println!(
        "simulated makespan {:.1} us over {:.1} us of total work; placement error {:.3} us",
        stats.makespan_sim_us, stats.total_sim_us, stats.mean_abs_placement_err_us
    );
}

//! Serving-layer demo: many client threads stream variable-size GEMM
//! requests at a shared [`Server`]; the batching window coalesces
//! whatever arrives together into single coordinated kernels, and every
//! client gets back exactly the result a standalone `gemm_ref` call on
//! its own inputs would produce.
//!
//! ```text
//! cargo run --example serve_demo --release
//! ```

use ctb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;

    // A small window keeps the demo snappy; a production deployment
    // trades window length against batch size (see crate docs).
    let server = Arc::new(Server::new(
        Framework::new(ArchSpec::volta_v100()),
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(300),
            queue_capacity: 64,
            workers: 2,
            ..ServeConfig::default()
        },
    ));

    // Each client loops over its own traffic mix: submit, wait for the
    // served result, verify it bitwise against the exact oracle.
    let shapes = [
        GemmShape::new(16, 32, 64),
        GemmShape::new(64, 64, 64),
        GemmShape::new(48, 80, 96),
        GemmShape::new(17, 33, 41),
    ];
    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut worst_us = 0.0f64;
                for i in 0..PER_CLIENT {
                    let shape = shapes[(t + i) % shapes.len()];
                    let batch = GemmBatch::random(&[shape], 1.0, 0.5, (t * 1000 + i) as u64);
                    let expected = batch.reference_result_exact();
                    let result = server
                        .submit(GemmRequest {
                            a: batch.a[0].clone(),
                            b: batch.b[0].clone(),
                            c: batch.c[0].clone(),
                            alpha: batch.alpha,
                            beta: batch.beta,
                            deadline: None,
                        })
                        .expect("admitted")
                        .wait()
                        .expect("completed");
                    ctb::matrix::assert_bitwise_eq(
                        &expected,
                        std::slice::from_ref(&result.c),
                        "served result vs oracle",
                    );
                    worst_us = worst_us.max(result.timing.total_us());
                }
                worst_us
            })
        })
        .collect();
    let worst_us =
        clients.into_iter().map(|h| h.join().expect("client ok")).fold(0.0f64, f64::max);

    let server = Arc::into_inner(server).expect("clients done");
    let stats = server.shutdown();

    println!("== ctb-serve closed-loop demo ==\n");
    println!("clients: {CLIENTS} x {PER_CLIENT} requests, every result bitwise-verified");
    println!(
        "served {} requests in {} coordinated batches (mean batch size {:.2})",
        stats.completed, stats.batches, stats.mean_batch_size
    );
    println!(
        "plan cache: {} hits / {} lookups ({:.0}% hit rate)",
        stats.plan_cache.hits,
        stats.plan_cache.hits + stats.plan_cache.misses,
        100.0 * stats.plan_cache.hit_rate()
    );
    println!(
        "latency: p50 {:.0} us, p95 {:.0} us, worst observed {:.0} us",
        stats.p50_us, stats.p95_us, worst_us
    );
}

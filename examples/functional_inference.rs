//! End-to-end *functional* CNN inference on the batched-GEMM framework:
//! every convolution of a (reduced) GoogleNet is executed as real f32
//! GEMMs through the coordinated tiling + batching framework, with
//! pooling/ReLU/concat in between, and one inception module is verified
//! against direct convolution.
//!
//! ```text
//! cargo run --example functional_inference --release
//! ```

use ctb::convnet::forward::{inception_direct, ForwardEngine, Weights};
use ctb::convnet::googlenet::inception;
use ctb::convnet::{Conv2dDesc, GoogleNet, Tensor};
use ctb::matrix::max_abs_diff;
use ctb::prelude::*;

/// GoogleNet's topology at 1/4 spatial resolution (56×56 input) so the
/// demo runs in moments while exercising the exact same code paths.
fn quarter_googlenet() -> GoogleNet {
    GoogleNet {
        stem: vec![
            Conv2dDesc::new("conv1/7x7_s2", 3, 56, 56, 64, 7, 7, 2, 3),
            Conv2dDesc::new("conv2/3x3_reduce", 64, 14, 14, 64, 1, 1, 1, 0),
            Conv2dDesc::new("conv2/3x3", 64, 14, 14, 192, 3, 3, 1, 1),
        ],
        modules: vec![
            inception("inception3a", 7, 192, 64, 96, 128, 16, 32, 32),
            inception("inception3b", 7, 256, 128, 128, 192, 32, 96, 64),
            inception("inception4a", 3, 480, 192, 96, 208, 16, 48, 64),
        ],
    }
}

fn main() {
    let net = quarter_googlenet();
    let weights = Weights::random_for(net.all_convs(), 2024);
    let image = Tensor::random(3, 56, 56, 7);

    let mut engine = ForwardEngine::new(Framework::new(ArchSpec::volta_v100()));

    println!("== functional inference through coordinated batched GEMM ==\n");

    // 1. Verify one inception module against direct convolution.
    let module = &net.modules[0];
    let x = Tensor::random(module.conv1x1.in_c, module.conv1x1.in_h, module.conv1x1.in_w, 3);
    let batched = engine.inception(module, &weights, &x);
    let direct = inception_direct(module, &weights, &x);
    println!(
        "{}: batched-GEMM output vs direct convolution, max |diff| = {:.2e} over {} values",
        module.name,
        max_abs_diff(&batched.data, &direct.data),
        batched.data.len()
    );

    // 2. Run the full reduced network.
    engine.simulated_us = 0.0;
    let features = engine.googlenet_forward(&net, &weights, &image);
    println!(
        "\nforward pass: {}x{}x{} image -> {} feature channels",
        image.c, image.h, image.w, features.c
    );
    println!(
        "simulated device time across all batched GEMM kernels: {:.1} us",
        engine.simulated_us
    );

    // 3. Show what the framework decided for one fan.
    let shapes = module.stage1_shapes(1);
    let plan = engine.framework().plan(&shapes).expect("plannable");
    println!("\n{} stage-1 fan plan:", module.name);
    for (s, st) in shapes.iter().zip(&plan.solution.per_gemm) {
        println!("  {s:>14} -> {st}");
    }
    println!(
        "  {} tiles in {} blocks ({} heuristic)",
        plan.plan.num_tiles(),
        plan.plan.num_blocks(),
        plan.heuristic
    );
}

//! Many small variable-size GEMMs, as in the astrophysics / block-sparse
//! solver workloads the paper's introduction motivates (batched BLAS on
//! thousands of tiny independent systems).
//!
//! Compares all four baselines against the coordinated framework on a
//! batch of small, size-varying GEMMs, with full numerical verification
//! of every execution path.
//!
//! ```text
//! cargo run --example astro_blocks --release
//! ```

use ctb::baselines::run::execute_baseline;
use ctb::matrix::gen::jittered_case;
use ctb::prelude::*;

fn main() {
    let arch = ArchSpec::volta_v100();

    // 24 small systems whose sizes vary by +-60% around 48x48x96 — the
    // "matrix sizes may vary hugely" regime that defeats
    // cublasSgemmBatched and motivates vbatch-style execution.
    let shapes = jittered_case(24, 48, 48, 96, 0.6, 99);
    let batch = GemmBatch::random(&shapes, 1.0, 0.0, 17);
    let expected = batch.reference_result();

    println!("== batched small GEMMs: baselines vs coordinated framework ==\n");
    println!("batch of {} GEMMs, e.g. {}, {}, {} ...", shapes.len(), shapes[0], shapes[1], shapes[2]);
    println!("total work: {:.1} MFLOP\n", batch.total_flops() as f64 / 1e6);

    let mut rows: Vec<(String, f64)> = Vec::new();
    for run in [
        default_serial(&arch, &shapes),
        cke(&arch, &shapes),
        cublas_like(&arch, &shapes),
        magma_vbatch(&arch, &shapes),
    ] {
        let (results, report) = execute_baseline(&arch, &batch, &run);
        ctb::matrix::assert_all_close(&expected, &results, 1e-4);
        rows.push((run.name.to_string(), report.total_us));
    }

    let framework = Framework::new(arch);
    let outcome = framework.run(&batch).expect("plannable");
    ctb::matrix::assert_all_close(&expected, &outcome.results, 1e-4);
    rows.push(("coordinated (ours)".into(), outcome.report.total_us));

    let worst = rows.iter().map(|(_, us)| *us).fold(0.0f64, f64::max);
    println!("{:<20} {:>10}  {:>8}", "execution", "time (us)", "speedup");
    for (name, us) in &rows {
        println!("{name:<20} {us:>10.1}  {:>7.2}x", worst / us);
    }
    println!("\nall five execution paths verified against the reference GEMM");
}

//! Portability sweep (the paper's §7.4): run the same batched-GEMM
//! workload on every modelled GPU generation and compare against MAGMA
//! vbatch, plus the online random-forest selector in action.
//!
//! ```text
//! cargo run --example arch_sweep --release
//! ```

use ctb::core::OnlineSelector;
use ctb::matrix::gen::random_cases;
use ctb::prelude::*;
use ctb::sim::simulate;

fn main() {
    println!("== architecture sweep: coordinated framework vs MAGMA vbatch ==\n");
    let cases = random_cases(20, 7);

    println!(
        "{:<14} {:>5} {:>10} {:>12} {:>9}",
        "device", "SMs", "peak GF/s", "TLP thresh", "speedup"
    );
    let mut devices = ArchSpec::all_presets();
    devices.extend(ArchSpec::extension_presets()); // post-paper: T4, A100
    for arch in devices {
        let fw = Framework::new(arch.clone());
        let mut speedups = Vec::new();
        for shapes in &cases {
            let ours = fw.simulate_only(shapes).expect("plannable").total_us;
            let magma = simulate(&arch, &magma_vbatch(&arch, shapes).seq).total_us;
            speedups.push(magma / ours);
        }
        let geo = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
        println!(
            "{:<14} {:>5} {:>10.0} {:>12} {:>8.2}x",
            arch.name,
            arch.sms,
            arch.peak_gflops(),
            fw.thresholds().tlp_threshold,
            geo.exp()
        );
    }

    // The online selector: train once (on the simulator — the paper
    // trained 2h on hardware), then pick a batching heuristic per batch
    // in a handful of comparisons.
    println!("\n== online batching-heuristic selection (random forest) ==\n");
    let arch = ArchSpec::volta_v100();
    let thresholds = Thresholds::for_arch(&arch);
    let selector = OnlineSelector::train(&arch, &thresholds, &random_cases(120, 3));
    for shapes in cases.iter().take(6) {
        let (m, n, k, b) = GemmBatch::random(shapes, 1.0, 0.0, 1).avg_features();
        let choice = selector.select_shapes(shapes);
        println!(
            "batch B={b:<3} avg(M,N,K)=({m:>5.0},{n:>5.0},{k:>6.0})  ->  {choice}"
        );
    }
    println!(
        "\naverage decision path depth: {:.1} comparisons per tree (paper: 7-8)",
        selector.forest().avg_path_depth(&[128.0, 128.0, 64.0, 16.0])
    );
}

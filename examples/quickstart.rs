//! Quickstart: batch three variable-size GEMMs through the coordinated
//! tiling + batching framework and inspect the plan.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ctb::prelude::*;

fn main() {
    // The paper's §4.2.3 worked example: three GEMMs of very different
    // sizes batched into one kernel.
    let shapes = vec![
        GemmShape::new(16, 32, 128),
        GemmShape::new(64, 64, 64),
        GemmShape::new(256, 256, 64),
    ];
    let batch = GemmBatch::random(&shapes, 1.0, 0.0, 42);

    // Bind the framework to a device model (the paper's main platform).
    let framework = Framework::new(ArchSpec::volta_v100());
    let outcome = framework.run(&batch).expect("planning succeeds");

    println!("== coordinated tiling + batching quickstart ==\n");
    println!("device: {}", framework.arch().name);
    println!(
        "thresholds: TLP = {}, theta = {}\n",
        framework.thresholds().tlp_threshold,
        framework.thresholds().theta
    );

    println!("tiling engine decisions (one strategy per GEMM):");
    for (shape, strategy) in shapes.iter().zip(&outcome.plan.solution.per_gemm) {
        println!("  {shape:>14} -> {strategy}");
    }
    println!(
        "\nbatching engine: heuristic = {}, {} tiles in {} thread blocks",
        outcome.plan.heuristic,
        outcome.plan.plan.num_tiles(),
        outcome.plan.plan.num_blocks(),
    );

    println!("\nsimulated single-kernel execution: {:.1} us", outcome.report.total_us);
    println!(
        "achieved: {:.1} GFLOP/s of {:.1} GFLOP/s peak",
        outcome.report.gflops(batch.total_flops()),
        framework.arch().peak_gflops()
    );

    // The functional results are real f32 GEMM outputs — verify against
    // the reference implementation.
    let expected = batch.reference_result();
    ctb::matrix::assert_all_close(&expected, &outcome.results, 1e-4);
    println!("\nnumerical check vs reference GEMM: OK");
}

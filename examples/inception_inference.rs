//! The paper's real-world case study (§7.3): batching the four branch
//! GEMMs of every GoogleNet inception module.
//!
//! Runs one inception module functionally end-to-end (im2col convolution
//! lowering included) and then times the full 57-convolution network
//! under the three executions the paper compares.
//!
//! ```text
//! cargo run --example inception_inference --release
//! ```

use ctb::convnet::im2col::conv_via_gemm;
use ctb::convnet::pipeline::googlenet_times;
use ctb::convnet::googlenet_v1;
use ctb::matrix::MatF32;
use ctb::prelude::*;

fn main() {
    let arch = ArchSpec::volta_v100();
    let net = googlenet_v1();
    let module = &net.modules[0]; // inception3a

    println!("== GoogleNet inception module as batched GEMM ==\n");
    println!("module {}: four parallel branch-head convolutions", module.name);

    // Stage 1: the four branch heads read the same input feature map.
    let image_batch = 1;
    let shapes = module.stage1_shapes(image_batch);
    for (conv, shape) in [
        &module.conv1x1,
        &module.reduce3x3,
        &module.reduce5x5,
        &module.pool_proj,
    ]
    .iter()
    .zip(&shapes)
    {
        println!("  {:<28} -> GEMM {shape}", conv.name);
    }

    // Functional path: run one branch through im2col + GEMM and check it
    // against what the batched framework computes for the same GEMM.
    let conv = &module.reduce5x5;
    let weights = MatF32::random(conv.out_c, conv.in_c * conv.kh * conv.kw, 7);
    let input = vec![MatF32::random(conv.in_c, conv.in_h * conv.in_w, 8)];
    let direct = conv_via_gemm(conv, &weights, &input);
    println!(
        "\nfunctional check: {} computes a {}x{} output via im2col+GEMM",
        conv.name,
        direct.rows(),
        direct.cols()
    );

    // Timed path: batch the four GEMMs through the framework vs MAGMA.
    let framework = Framework::new(arch.clone());
    let plan = framework.plan(&shapes).expect("plannable");
    println!(
        "framework plan: strategies {:?}, {} blocks, heuristic {}",
        plan.solution.per_gemm.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        plan.plan.num_blocks(),
        plan.heuristic
    );

    let ours = framework.simulate_only(&shapes).unwrap().total_us;
    let magma = {
        let run = magma_vbatch(&arch, &shapes);
        ctb::sim::simulate(&arch, &run.seq).total_us
    };
    println!("\nstage-1 batched GEMMs ({} module):", module.name);
    println!("  MAGMA vbatch : {magma:.1} us");
    println!("  coordinated  : {ours:.1} us  ({:.2}x)", magma / ours);

    // Full network, the paper's three rows.
    println!("\n== full GoogleNet inference (57 convolutions, image batch 1) ==");
    let t = googlenet_times(&arch, 1);
    println!("  cuDNN-like serial      : {:.2} ms", t.cudnn_like_ms);
    println!("  + stream concurrency   : {:.2} ms", t.cudnn_streams_ms);
    println!("  coordinated batching   : {:.2} ms", t.coordinated_ms);
    println!(
        "  speedup vs serial {:.2}x, vs streams {:.2}x",
        t.speedup_vs_baseline(),
        t.speedup_vs_streams()
    );
}
